"""Command-line interface: ``python -m repro <command>``.

Commands mirror the demo's workflow:

    generate   write a synthetic corpus dump (JSON) to a file
    load       bulk-load a dump and print corpus statistics
    search     run an advanced query against a corpus
    pagerank   print the top pages by double-link PageRank
    solvers    run the Fig. 3 solver comparison table
    tags       build and print a tag cloud
    serve      start the HTTP JSON/SVG API

Every command accepts ``--seed`` (build a synthetic corpus in-process) or
``--corpus FILE`` (a dump produced by ``generate``/``export``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReproError


def _build_smr(args):
    from repro.smr.dump import restore
    from repro.smr.repository import SensorMetadataRepository
    from repro.workloads.generator import CorpusSpec, generate_corpus

    if getattr(args, "corpus", None):
        with open(args.corpus, "r", encoding="utf-8") as handle:
            return restore(json.load(handle))
    corpus = generate_corpus(CorpusSpec(seed=args.seed))
    return SensorMetadataRepository.from_corpus(corpus)


def _cmd_generate(args) -> int:
    from repro.smr.dump import export_json
    from repro.smr.repository import SensorMetadataRepository
    from repro.workloads.generator import CorpusSpec, generate_corpus

    corpus = generate_corpus(CorpusSpec(seed=args.seed))
    smr = SensorMetadataRepository.from_corpus(corpus)
    payload = export_json(smr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {smr.page_count} pages to {args.out}")
    else:
        print(payload)
    return 0


def _cmd_load(args) -> int:
    from repro.core.stats import corpus_statistics

    smr = _build_smr(args)
    stats = corpus_statistics(smr, top_values_for=("project", "institution"))
    print(stats.format_report())
    for prop, values in stats.top_values.items():
        rendered = ", ".join(f"{value} ({count})" for value, count in values)
        print(f"top {prop}: {rendered}")
    return 0


def _cmd_search(args) -> int:
    from repro.core.engine import AdvancedSearchEngine
    from repro.viz.table import render_text_table

    engine = AdvancedSearchEngine(_build_smr(args))
    results = engine.search(engine.parse(args.query))
    if not results:
        suggestions = engine.did_you_mean(args.query) if "=" not in args.query else []
        print("no results" + (f"; did you mean: {', '.join(suggestions)}" if suggestions else ""))
        return 1
    print(f"{len(results)} of {results.total_candidates} candidates")
    print(
        render_text_table(
            ["title", "kind", "score", "match"],
            [
                (r.title, r.kind, f"{r.score:.4g}", f"{r.match_degree:.0%}")
                for r in results
            ],
        )
    )
    if args.recommend:
        print("\nrecommended:")
        for rec in engine.recommend(results, k=args.recommend):
            print(f"  {rec.describe()}")
    return 0


def _cmd_pagerank(args) -> int:
    from repro.core.ranking import PageRankRanker

    smr = _build_smr(args)
    ranker = PageRankRanker(smr, alpha=args.alpha, method=args.method)
    for title, score in ranker.top(args.top):
        print(f"{score:.6f}  {title}")
    return 0


def _cmd_solvers(args) -> int:
    from repro.pagerank.convergence import ConvergenceStudy
    from repro.pagerank.doublelink import combine_link_structures
    from repro.workloads.webgraphs import paired_link_structures

    sizes = [int(part) for part in args.sizes.split(",")]
    study = ConvergenceStudy(tol=args.tol, max_iter=5000)
    for n in sizes:
        web, semantic = paired_link_structures(n, seed=n)
        study.run(combine_link_structures(web, semantic), label=f"n={n}")
    print(study.format_table())
    return 0


def _cmd_tags(args) -> int:
    from repro.tagging.interface import TaggingSystem
    from repro.workloads.tags import generate_tag_workload

    system = TaggingSystem()
    if args.corpus or args.from_smr:
        smr = _build_smr(args)
        system.sync_from_smr(smr, ["project", "sensor_type", "status"])
    else:
        workload = generate_tag_workload(seed=args.seed)
        system.store.import_assignments(workload.assignments)
    cloud = system.cloud(top=args.top)
    print(f"{len(cloud.entries)} tags, {len(cloud.cliques)} maximal cliques")
    for entry in cloud.entries:
        marker = "*" if entry.bridges_cliques else " "
        print(f"{marker} size={entry.size} count={entry.count:<4} {entry.tag}")
    return 0


def _cmd_serve(args) -> int:  # pragma: no cover - blocking server loop
    from repro.core.engine import AdvancedSearchEngine
    from repro.tagging.interface import TaggingSystem
    from repro.web.app import create_app, serve

    engine = AdvancedSearchEngine(_build_smr(args))
    tagging = TaggingSystem()
    tagging.sync_from_smr(engine.smr, ["project", "sensor_type"])
    serve(create_app(engine, tagging), host=args.host, port=args.port)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Advanced sensor-metadata search (ICDE 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_source(p):
        p.add_argument("--seed", type=int, default=42, help="synthetic corpus seed")
        p.add_argument("--corpus", help="load this JSON dump instead of generating")

    p_generate = sub.add_parser("generate", help="write a synthetic corpus dump")
    p_generate.add_argument("--seed", type=int, default=42)
    p_generate.add_argument("--out", help="output file (stdout if omitted)")
    p_generate.set_defaults(func=_cmd_generate)

    p_load = sub.add_parser("load", help="load a corpus and print statistics")
    add_source(p_load)
    p_load.set_defaults(func=_cmd_load)

    p_search = sub.add_parser("search", help="run an advanced query")
    p_search.add_argument("query", help="compact query string")
    p_search.add_argument("--recommend", type=int, default=0, metavar="K")
    add_source(p_search)
    p_search.set_defaults(func=_cmd_search)

    p_rank = sub.add_parser("pagerank", help="top pages by double-link PageRank")
    p_rank.add_argument("--top", type=int, default=10)
    p_rank.add_argument("--alpha", type=float, default=0.5)
    p_rank.add_argument("--method", default="gauss_seidel")
    add_source(p_rank)
    p_rank.set_defaults(func=_cmd_pagerank)

    p_solvers = sub.add_parser("solvers", help="the Fig. 3 solver comparison")
    p_solvers.add_argument("--sizes", default="500,1000")
    p_solvers.add_argument("--tol", type=float, default=1e-8)
    p_solvers.set_defaults(func=_cmd_solvers)

    p_tags = sub.add_parser("tags", help="build and print a tag cloud")
    p_tags.add_argument("--top", type=int, default=25)
    p_tags.add_argument("--from-smr", action="store_true", help="tags from SMR properties")
    add_source(p_tags)
    p_tags.set_defaults(func=_cmd_tags)

    p_serve = sub.add_parser("serve", help="start the HTTP API")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000)
    add_source(p_serve)
    p_serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was closed (e.g. piped into `head`); exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
