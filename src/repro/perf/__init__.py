"""Query-path performance layer: generation-stamped result caching.

The paper chooses Gauss–Seidel for production precisely because ranking
must keep up with a wiki whose double-link structure evolves continuously
(Section III, Fig. 3), and the ROADMAP's north star asks the engine to
serve heavy repeated traffic "as fast as the hardware allows". This
package supplies the caching half of that story; the incremental
re-ranking half lives in :mod:`repro.pagerank.incremental` and
:class:`repro.core.ranking.PageRankRanker`.

- :mod:`repro.perf.cache` — :class:`GenerationalLruCache`, an LRU result
  cache whose entries are stamped with the repository *generation* (the
  SMR mutation counter). Edits and bulk loads bump the generation, so
  stale entries die lazily on lookup instead of requiring an eager
  flush; :func:`result_cache_key` canonicalizes a
  :class:`~repro.core.query.SearchQuery` + privilege pair into the cache
  key the engine uses.

Hit/miss/staleness counters are reported through :mod:`repro.obs` under
``perf_cache_*_total{cache=...}`` and surface in ``GET /metrics`` and
``GET /api/stats`` (see docs/PERFORMANCE.md for the invalidation
semantics).
"""

from repro.perf.cache import (
    CacheStats,
    GenerationalLruCache,
    result_cache_key,
)

__all__ = ["CacheStats", "GenerationalLruCache", "result_cache_key"]
