"""Query-path performance layer: result caching and bounded parallelism.

The paper chooses Gauss–Seidel for production precisely because ranking
must keep up with a wiki whose double-link structure evolves continuously
(Section III, Fig. 3), and the ROADMAP's north star asks the engine to
serve heavy repeated traffic "as fast as the hardware allows". This
package supplies the caching and fan-out halves of that story; the
incremental re-ranking half lives in :mod:`repro.pagerank.incremental`
and :class:`repro.core.ranking.PageRankRanker`.

- :mod:`repro.perf.cache` — :class:`GenerationalLruCache`, an LRU result
  cache whose entries are stamped with the repository *generation* (the
  SMR mutation counter). Edits and bulk loads bump the generation, so
  stale entries die lazily on lookup instead of requiring an eager
  flush; :func:`result_cache_key` canonicalizes a
  :class:`~repro.core.query.SearchQuery` + privilege pair into the cache
  key the engine uses.
- :mod:`repro.perf.pool` — :class:`WorkerPool`, the process-wide,
  size-bounded, trace-propagating thread pool the engine fans one
  query's SQL/SPARQL/keyword/bbox evaluations onto, the iterative
  PageRank solvers chunk their matvecs over, and the bulk loader
  parses batches on; :func:`parallel_map` degrades to plain serial
  execution for small inputs, one-worker pools, or nested fan-out.
- :mod:`repro.perf.procpool` — the *process* backend behind
  ``kind="cpu"`` fan-outs: worker processes operating on shared-memory
  CSR slabs and dense vectors, which is what actually escapes the GIL
  for the Section III matvec kernels, the Section IV similarity tiles
  and bulk-parse batches. :func:`~repro.perf.pool.pool_for` selects
  thread vs process vs serial per task kind and degrades gracefully
  (process → thread → serial) with byte-identical results at every
  level (docs/PARALLELISM.md).

Everything reports through :mod:`repro.obs`: cache verdicts under
``perf_cache_*_total{cache=...}``, pool health under
``perf_pool_*{pool=...}``, both visible in ``GET /metrics`` and
``GET /api/stats`` (see docs/PERFORMANCE.md for invalidation and
concurrency semantics).
"""

from repro.perf.cache import (
    CacheStats,
    GenerationalLruCache,
    result_cache_key,
)
from repro.perf.pool import (
    TASK_KINDS,
    WorkerPool,
    backend_for,
    chunk_ranges,
    default_pool_size,
    get_pool,
    get_serial_pool,
    in_worker,
    parallel_map,
    parallel_matvec,
    pool_for,
    set_pool,
)
from repro.perf.procpool import (
    PoolTaskError,
    ProcessWorkerPool,
    SharedSlab,
    get_process_pool,
    shutdown_process_pool,
)

__all__ = [
    "CacheStats",
    "GenerationalLruCache",
    "PoolTaskError",
    "ProcessWorkerPool",
    "SharedSlab",
    "TASK_KINDS",
    "WorkerPool",
    "backend_for",
    "chunk_ranges",
    "default_pool_size",
    "get_pool",
    "get_process_pool",
    "get_serial_pool",
    "in_worker",
    "parallel_map",
    "parallel_matvec",
    "pool_for",
    "result_cache_key",
    "set_pool",
    "shutdown_process_pool",
]
