"""A process-wide, size-bounded, observable worker pool.

The paper's Query Management module evaluates one advanced search as a
*combination of SQL and SPARQL* constraint sets plus keyword and spatial
predicates (Section II, Fig. 1) — independent sub-evaluations that the
engine fans out onto this pool, and Section III's ranking solve is a
row-partitionable matvec the iterative solvers chunk over it. One shared
:class:`WorkerPool` serves the whole process so concurrency stays
bounded by configuration, not by request volume.

Observability (all families labelled ``{pool=<name>}``):

- ``perf_pool_size`` — configured worker count;
- ``perf_pool_queue_depth`` — tasks submitted but not yet running
  (waiting for a free worker);
- ``perf_pool_tasks_total`` / ``perf_pool_task_seconds`` — completed
  tasks and their execution latency;
- ``perf_pool_saturation_total`` — submissions that found every worker
  busy and had to queue.

Every task inherits the submitting thread's trace id: the wrapper binds
it in the worker and opens a ``pool.task`` span, so ``/debug/trace``
still reconstructs a parallel request as one trace tree.

Backend selection (:func:`pool_for`): callers describe their work with a
*task kind* and the pool picks the backend —

- ``kind="io"`` — GIL-releasing or I/O-ish work (constraint fan-out,
  anything that blocks): the shared **thread** pool;
- ``kind="cpu"`` — CPU-bound kernels (PageRank matvec chunks, tagging
  similarity tiles, bulk-parse batches): the **process** pool of
  :mod:`repro.perf.procpool`, whose shared-memory slabs escape the GIL;
- ``kind="serial"`` — explicitly serial (a one-worker pool).

Degradation rules, each one level weaker and each preserving results
exactly: the process backend falls back to the thread pool when the
platform probe fails (sandboxed CI), a worker dies mid-run, or the
payload does not pickle; the thread pool falls back to plain serial
execution (:func:`parallel_map`) when the input is smaller than
``min_chunk``, when the pool has one worker, or when the caller already
*is* a pool worker — the last rule makes nested fan-out (an engine task
that bulk-loads, a solver inside a filter) deadlock-free by construction
instead of by discipline. Every fan-out therefore has the same
observable behavior at every degradation level — only the wall clock
changes (``tests/test_procpool.py`` pins the whole chain).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro import obs
from repro.errors import ReproError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable overriding the default pool size.
POOL_SIZE_ENV = "REPRO_POOL_SIZE"

# Set while a pool worker runs a task; parallel_map consults it so work
# submitted from inside a worker degrades to serial instead of waiting
# on workers that may all be blocked the same way (deadlock).
_worker_context = threading.local()


def in_worker() -> bool:
    """True when the calling thread is currently executing a pool task."""
    return getattr(_worker_context, "active", False)


def default_pool_size() -> int:
    """The default worker count: ``REPRO_POOL_SIZE`` or min(4, cpus)."""
    override = os.environ.get(POOL_SIZE_ENV)
    if override:
        try:
            size = int(override)
        except ValueError:
            raise ReproError(
                f"{POOL_SIZE_ENV} must be an integer, got {override!r}"
            ) from None
        if size < 1:
            raise ReproError(f"{POOL_SIZE_ENV} must be >= 1, got {size}")
        return size
    return max(1, min(4, os.cpu_count() or 1))


class WorkerPool:
    """A bounded :class:`ThreadPoolExecutor` with metrics and tracing.

    Parameters
    ----------
    size:
        Worker-thread count; defaults to :func:`default_pool_size`.
        A size-1 pool is valid and makes every :func:`parallel_map`
        over it run serially on the calling thread.
    name:
        Label under which the pool reports to the metrics registry
        (``perf_pool_*{pool=<name>}``).

    Threads are started lazily on first submit, so constructing a pool
    (including the process-wide default) costs nothing until used.
    """

    backend = "thread"

    def __init__(self, size: Optional[int] = None, name: str = "default"):
        if size is None:
            size = default_pool_size()
        if size < 1:
            raise ReproError(f"pool size must be >= 1, got {size}")
        self.size = int(size)
        self.name = name
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._inflight = 0  # submitted, not yet finished
        obs.get_registry().gauge(
            "perf_pool_size", "Configured worker count per pool.", labels=("pool",)
        ).labels(self.name).set(float(self.size))

    def __repr__(self) -> str:
        return f"WorkerPool(name={self.name!r}, size={self.size})"

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.size,
                    thread_name_prefix=f"repro-pool-{self.name}",
                )
            return self._executor

    def submit(self, fn: Callable[..., R], *args: Any, label: str = "task", **kwargs: Any) -> "Future[R]":
        """Schedule ``fn(*args, **kwargs)``; returns its future.

        The task runs with the submitter's trace id bound and inside a
        ``pool.task`` span, so its span tree lands in ``/debug/trace``
        under the same trace as the request that fanned it out.
        """
        trace_id = obs.current_trace_id()
        registry = obs.get_registry()
        with self._lock:
            self._inflight += 1
            waiting = max(0, self._inflight - self.size)
            saturated = self._inflight > self.size
        if registry.enabled:
            registry.gauge(
                "perf_pool_queue_depth",
                "Tasks submitted but still waiting for a free worker.",
                labels=("pool",),
            ).labels(self.name).set(float(waiting))
            if saturated:
                registry.counter(
                    "perf_pool_saturation_total",
                    "Submissions that found every worker busy.",
                    labels=("pool",),
                ).labels(self.name).inc()

        def run() -> R:
            start = time.perf_counter()
            _worker_context.active = True
            if trace_id is not None:
                obs.bind_trace_id(trace_id)
            try:
                with obs.get_tracer().span("pool.task", pool=self.name, task=label):
                    return fn(*args, **kwargs)
            finally:
                if trace_id is not None:
                    obs.unbind_trace_id()
                _worker_context.active = False
                self._finish(time.perf_counter() - start)

        return self._ensure_executor().submit(run)

    def _finish(self, elapsed: float) -> None:
        with self._lock:
            self._inflight -= 1
            waiting = max(0, self._inflight - self.size)
        registry = obs.get_registry()
        if not registry.enabled:
            return
        registry.gauge(
            "perf_pool_queue_depth",
            "Tasks submitted but still waiting for a free worker.",
            labels=("pool",),
        ).labels(self.name).set(float(waiting))
        registry.counter(
            "perf_pool_tasks_total", "Tasks completed per pool.", labels=("pool",)
        ).labels(self.name).inc()
        registry.histogram(
            "perf_pool_task_seconds",
            "Execution seconds per pool task.",
            labels=("pool",),
        ).labels(self.name).observe(elapsed)

    @property
    def inflight(self) -> int:
        """Tasks submitted and not yet finished (diagnostic)."""
        with self._lock:
            return self._inflight

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker threads; the pool restarts lazily if reused."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    min_chunk: int = 2,
    pool: Optional[WorkerPool] = None,
    label: str = "map",
    kind: str = "io",
) -> List[R]:
    """``[fn(item) for item in items]``, fanned out when it pays off.

    Order-preserving, and exception-deterministic: the first failing
    *input position* raises, exactly as the serial loop would (later
    tasks may still run to completion in the background).

    ``kind`` selects the backend when no explicit ``pool`` is given
    (an explicit pool always wins): ``"cpu"`` routes to the process
    backend when the platform supports it *and* ``fn`` plus the items
    pickle, batching items per worker; anything else — including every
    degradation — uses the thread pool. Degrades to the plain serial
    loop when ``items`` has fewer than ``min_chunk`` elements, when the
    pool has a single worker, or when the caller is itself a pool worker
    (nested fan-out would otherwise deadlock a fully busy pool).
    """
    work = list(items)
    if pool is None and kind == "cpu" and len(work) >= max(min_chunk, 2) and not in_worker():
        from repro.perf import procpool

        proc = procpool.get_process_pool()
        if proc is not None and procpool.picklable(fn, work[:1]):
            try:
                return proc.map_batched(fn, work, label=label)
            except procpool.ProcpoolUnavailable:
                pass  # marked down; fall through to the thread pool
    if pool is None:
        pool = get_pool()
    if len(work) < max(min_chunk, 2) or pool.size <= 1 or in_worker():
        return [fn(item) for item in work]
    futures = [pool.submit(fn, item, label=label) for item in work]
    return [future.result() for future in futures]


def chunk_ranges(n: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into up to ``chunks`` contiguous ``(start, stop)``.

    Sizes differ by at most one; empty ranges are never produced.
    """
    if n <= 0 or chunks <= 0:
        return []
    chunks = min(chunks, n)
    base, extra = divmod(n, chunks)
    bounds = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def parallel_matvec(matrix, x, *, chunks: int, pool=None):
    """Row-partitioned ``matrix @ x`` over the selected backend.

    Each chunk computes rows ``[start, stop)`` independently and lands
    directly in its disjoint slice of one preallocated output vector —
    there is no serial concatenate step in the parent; the process
    backend likewise streams chunks in completion order
    (:meth:`~repro.perf.procpool.ProcessWorkerPool.run_kernel_into`).
    When ``pool`` is a
    :class:`~repro.perf.procpool.ProcessWorkerPool` (or ``None`` and the
    process backend is up), chunks run in worker processes over the
    matrix's cached shared-memory CSR slabs
    (:func:`repro.perf.procpool.shared_matvec`); otherwise each chunk is
    :meth:`repro.linalg.CsrMatrix.matvec_rows` on the thread pool. Both
    kernels are the same reduceat code, so every backend returns bitwise
    identical results. Falls back to the fused serial
    :meth:`~repro.linalg.CsrMatrix.matvec` for one chunk or tiny
    matrices, where partitioning costs more than it saves.
    """
    import numpy as np

    if chunks <= 1 or matrix.nrows < 2 * chunks:
        return matrix.matvec(x)
    from repro.perf import procpool

    proc = pool if isinstance(pool, procpool.ProcessWorkerPool) else None
    if proc is None and pool is None:
        proc = procpool.get_process_pool()
    if proc is not None and proc.size > 1 and not in_worker():
        try:
            return procpool.shared_matvec(matrix, x, chunks, proc)
        except procpool.ProcpoolUnavailable:
            pass  # marked down; recompute on the thread/serial path
    thread_pool = pool if isinstance(pool, WorkerPool) else None
    bounds = chunk_ranges(matrix.nrows, chunks)
    out = np.empty(matrix.nrows, dtype=float)

    def _fill(bound: Tuple[int, int]) -> None:
        # Disjoint slices: each worker writes only its own rows, so the
        # concurrent assignments need no lock and the filled vector is
        # bitwise identical to concatenating the parts in bound order.
        out[bound[0] : bound[1]] = matrix.matvec_rows(x, bound[0], bound[1])

    parallel_map(_fill, bounds, min_chunk=2, pool=thread_pool, label="matvec")
    return out


# ----------------------------------------------------------------------
# Module-level default pool with injection hooks (mirrors repro.obs)
# ----------------------------------------------------------------------

_default_pool: Optional[WorkerPool] = None
_default_pool_lock = threading.Lock()


def get_pool() -> WorkerPool:
    """The process-wide default pool (created lazily on first use)."""
    global _default_pool
    if _default_pool is None:
        with _default_pool_lock:
            if _default_pool is None:
                _default_pool = WorkerPool(name="default")
    return _default_pool


def set_pool(pool: WorkerPool) -> Optional[WorkerPool]:
    """Swap the default pool (tests/benchmarks); returns the previous one."""
    global _default_pool
    with _default_pool_lock:
        previous, _default_pool = _default_pool, pool
    return previous


_serial_pool: Optional[WorkerPool] = None


def get_serial_pool() -> WorkerPool:
    """A shared one-worker pool: every fan-out over it runs serially."""
    global _serial_pool
    if _serial_pool is None:
        _serial_pool = WorkerPool(size=1, name="serial")
    return _serial_pool


#: The task kinds :func:`pool_for` understands, and their ideal backend.
TASK_KINDS = {"io": "thread", "cpu": "process", "serial": "serial"}


def backend_for(kind: str) -> str:
    """The backend :func:`pool_for` would *actually* use for ``kind``.

    ``"cpu"`` resolves to ``"process"`` only when the platform probe
    passed and more than one process worker is configured; otherwise it
    degrades to ``"thread"`` (and, inside :func:`parallel_map`, further
    to serial for small inputs or one-worker pools).
    """
    if kind not in TASK_KINDS:
        raise ReproError(f"unknown task kind {kind!r}; known: {sorted(TASK_KINDS)}")
    if kind == "serial":
        return "serial"
    if kind == "cpu":
        from repro.perf import procpool

        if procpool.get_process_pool() is not None:
            return "process"
    return "thread"


def pool_for(kind: str = "io"):
    """The pool serving ``kind`` after degradation (never ``None``).

    Selection matrix (docs/PARALLELISM.md): ``io`` → the shared thread
    pool; ``cpu`` → the shared process pool, degrading to the thread
    pool when unavailable; ``serial`` → a one-worker pool.
    """
    backend = backend_for(kind)
    if backend == "serial":
        return get_serial_pool()
    if backend == "process":
        from repro.perf import procpool

        return procpool.get_process_pool()
    return get_pool()
