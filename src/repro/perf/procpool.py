"""Process-based workers over shared-memory slabs: the GIL escape hatch.

The paper's Section III ranking solve and Section IV similarity matrix
are CPU-bound kernels; the PR-4 measurements showed the thread pool
cannot speed those up on a GIL build (``pool4_vs_pool1=0.93x`` in
``benchmarks/results/parallel_fanout.txt``). This module supplies the
*process* backend :mod:`repro.perf.pool` selects for ``kind="cpu"``
work: PageRank matvec chunks, tagging cosine-similarity tiles and
bulk-parse batches run in worker processes, while I/O-ish constraint
fan-out stays on the thread pool.

Design invariants (documented in docs/PARALLELISM.md):

- **Shared-memory slabs, not pickled arrays.** Large operands — CSR
  ``indptr``/``indices``/``data`` and dense vectors — travel through
  ``multiprocessing.shared_memory`` segments (:class:`SharedSlab`).
  A :class:`CsrMatrix`'s slabs are created once per matrix and cached in
  a :class:`weakref.WeakKeyDictionary`, so an iterative solver pays the
  copy once, not per iteration; per-call operands (the iterate ``x``)
  are shared for the duration of one fan-out and unlinked immediately
  after. Workers attach by name and cache attachments in a bounded LRU.
- **Byte-identical results.** Worker kernels are the *same* numpy
  kernels the serial path runs (:func:`_matvec_kernel` mirrors
  :meth:`repro.linalg.CsrMatrix.matvec_rows` exactly), so a process
  fan-out returns bitwise-identical arrays — asserted in
  ``tests/test_procpool.py`` and ``benchmarks/bench_procpool.py``.
- **Graceful degradation.** :func:`available` probes the platform once
  (sandboxed CI may forbid fork/spawn or ``/dev/shm``); every entry
  point falls back to the thread pool — and through it to serial — when
  the probe fails, a worker dies mid-run, or the payload does not
  pickle. ``REPRO_PROCPOOL=0`` forces the degraded path.
- **Trace and metrics propagation.** The submitting thread's trace id
  crosses the process boundary with the task and is bound in the worker
  (worker-side event-log records correlate); task wall time is measured
  on the worker's own clock and recorded by the *parent* into the
  shared ``perf_pool_*{pool=...}`` families, since a child process's
  registry is invisible to ``/metrics``. Task failures return the
  worker's formatted traceback and re-raise as :class:`PoolTaskError`
  in the parent, counting into ``errors_total{component="procpool"}``.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
import weakref
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ReproError

#: Force the backend off (``0``) regardless of the platform probe.
PROCPOOL_ENV = "REPRO_PROCPOOL"
#: Override the default process-worker count.
PROCPOOL_SIZE_ENV = "REPRO_PROCPOOL_SIZE"
#: Override the start method (``fork`` or ``spawn``).
PROCPOOL_START_ENV = "REPRO_PROCPOOL_START"

#: Worker-side attachment cache bound (segments, not bytes).
_ATTACH_CACHE_LIMIT = 64


class PoolTaskError(ReproError):
    """A pool-backend task failed in a worker process.

    Carries the worker's formatted traceback so the original failure
    site is visible to the caller, not just a bare exception repr.
    """

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:  # surface the worker traceback in test output
        base = super().__str__()
        if self.remote_traceback:
            return f"{base}\n--- worker traceback ---\n{self.remote_traceback}"
        return base


class ProcpoolUnavailable(ReproError):
    """Raised internally when the process backend cannot run; callers degrade."""


# ----------------------------------------------------------------------
# Shared-memory slabs
# ----------------------------------------------------------------------


class SharedSlab:
    """One numpy array stored in a ``multiprocessing.shared_memory`` segment.

    The creating process owns the segment: :meth:`release` (also run by a
    GC finalizer) closes *and unlinks* it. Workers attach read-only views
    by :func:`attach_view`; an attached copy stays valid after the owner
    unlinks, until the worker closes it — the lifetime rule that lets the
    parent drop per-call slabs eagerly.
    """

    def __init__(self, shm, dtype: str, shape: Tuple[int, ...]):
        self._shm = shm
        self.dtype = dtype
        self.shape = tuple(shape)
        self.name = shm.name
        self.owner_pid = os.getpid()
        self._finalizer = weakref.finalize(self, _release_segment, shm)

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedSlab":
        from multiprocessing import shared_memory

        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(shm, array.dtype.str, array.shape)

    @property
    def meta(self) -> Tuple[str, str, Tuple[int, ...], int]:
        """Picklable ``(name, dtype, shape, owner_pid)`` attach handle."""
        return (self.name, self.dtype, self.shape, self.owner_pid)

    def view(self) -> np.ndarray:
        """The owner's own ndarray view of the segment."""
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=self._shm.buf)

    def release(self) -> None:
        """Close and unlink the segment (idempotent)."""
        self._finalizer()


def _release_segment(shm) -> None:
    try:
        shm.close()
    except (OSError, ValueError):  # buffer already gone
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass


# Worker-side attachment cache: segment name -> (shm, ndarray view).
_attached: "OrderedDict[str, Tuple[Any, np.ndarray]]" = OrderedDict()


def attach_view(meta: Tuple[str, str, Tuple[int, ...], int]) -> np.ndarray:
    """Attach (or reuse) a shared segment and return its ndarray view.

    Attachments are cached per worker process in a bounded LRU; on
    eviction the segment is closed. Python 3.11's resource tracker
    registers *attachments* as if they were owned, which would make a
    **spawned** worker's (private) tracker unlink live segments when the
    worker exits — the standard workaround is to unregister the
    attachment immediately. Fork children share the owner's tracker, so
    there the registration is a no-op and unregistering would instead
    corrupt the owner's bookkeeping — hence the pid + start-method
    guard.
    """
    name, dtype, shape, owner_pid = meta
    cached = _attached.get(name)
    if cached is not None:
        _attached.move_to_end(name)
        return cached[1]
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if os.getpid() != owner_pid and _start_method() != "fork":
        try:  # see docstring: spawn-worker attachments must not be tracked
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)
    _attached[name] = (shm, view)
    while len(_attached) > _ATTACH_CACHE_LIMIT:
        _, (old_shm, _) = _attached.popitem(last=False)
        try:
            old_shm.close()
        except OSError:
            pass
    return view


# ----------------------------------------------------------------------
# Cached shared CSR slabs
# ----------------------------------------------------------------------

_csr_slabs: "weakref.WeakKeyDictionary[Any, Dict[str, SharedSlab]]" = (
    weakref.WeakKeyDictionary()
)
_csr_slabs_lock = threading.Lock()


def shared_csr_slabs(matrix) -> Dict[str, SharedSlab]:
    """The (cached) shared slabs of an immutable CSR matrix.

    Built once per :class:`~repro.linalg.CsrMatrix` instance — the
    matrix never mutates, so the copy is paid on the first parallel call
    and the slabs die with the matrix (weak-keyed finalizers unlink).
    """
    with _csr_slabs_lock:
        slabs = _csr_slabs.get(matrix)
        if slabs is None:
            slabs = {
                "indptr": SharedSlab.create(matrix.indptr),
                "indices": SharedSlab.create(matrix.indices),
                "data": SharedSlab.create(matrix.data),
            }
            _csr_slabs[matrix] = slabs
        return slabs


# ----------------------------------------------------------------------
# Worker-side task wrappers (module-level: must import under spawn)
# ----------------------------------------------------------------------


def _probe_task() -> int:
    return os.getpid()


def _failure_payload(exc: BaseException) -> tuple:
    """``(exception_or_None, repr, formatted_traceback)`` for the parent.

    The exception object rides along when it pickles, so the parent can
    re-raise the *original type* (the serial contract); the formatted
    traceback always survives, chained in as the raising cause.
    """
    try:
        pickle.dumps(exc)
        carried: Optional[BaseException] = exc
    except Exception:
        carried = None
    return (carried, repr(exc), traceback.format_exc())


def _run_in_worker(fn: Callable, args: tuple, kwargs: dict, trace_id: Optional[str]):
    """Execute one task in the worker; never raises across the boundary."""
    start = time.perf_counter()
    bound = False
    try:
        if trace_id is not None:
            obs.bind_trace_id(trace_id)
            bound = True
        result = fn(*args, **kwargs)
        return ("ok", result, time.perf_counter() - start)
    except BaseException as exc:  # noqa: BLE001 — must cross the boundary intact
        return ("err", _failure_payload(exc), time.perf_counter() - start)
    finally:
        if bound:
            obs.unbind_trace_id()


def _invoke_kernel(kernel, metas: Dict[str, tuple], args: tuple, trace_id):
    """Attach the named slabs and run an array kernel over them."""

    def call():
        arrays = {key: attach_view(meta) for key, meta in metas.items()}
        return kernel(arrays, *args)

    return _run_in_worker(call, (), {}, trace_id)


def _invoke_map_batch(fn, batch: Sequence[Any], trace_id):
    """Run ``fn`` per item, reporting each item's outcome independently."""

    def call():
        out = []
        for item in batch:
            try:
                out.append(("ok", fn(item)))
            except BaseException as exc:  # noqa: BLE001
                out.append(("err", _failure_payload(exc)))
        return out

    return _run_in_worker(call, (), {}, trace_id)


def _matvec_kernel(arrays: Dict[str, np.ndarray], start: int, stop: int) -> np.ndarray:
    """``(A @ x)[start:stop]`` over shared CSR slabs.

    Line-for-line the kernel of :meth:`repro.linalg.CsrMatrix.matvec_rows`
    — same reduceat segments, same summation order — so concatenated
    chunks are bitwise identical to the serial product
    (``tests/test_procpool.py`` pins this against ``matvec_rows``).
    """
    indptr = arrays["indptr"]
    indices = arrays["indices"]
    data = arrays["data"]
    x = arrays["x"]
    out = np.zeros(stop - start)
    lo, hi = indptr[start], indptr[stop]
    if hi > lo:
        products = data[lo:hi] * x[indices[lo:hi]]
        starts = indptr[start:stop]
        nonempty = indptr[start + 1 : stop + 1] > starts
        out[nonempty] = np.add.reduceat(products, (starts - lo)[nonempty])
    return out


# ----------------------------------------------------------------------
# Availability probe
# ----------------------------------------------------------------------

_available: Optional[bool] = None
_unavailable_reason: Optional[str] = None
_avail_lock = threading.Lock()


def _start_method() -> str:
    import multiprocessing

    override = os.environ.get(PROCPOOL_START_ENV)
    methods = multiprocessing.get_all_start_methods()
    if override:
        if override not in methods:
            raise ReproError(
                f"{PROCPOOL_START_ENV}={override!r} not in {methods}"
            )
        return override
    # fork is cheapest and inherits nothing we rely on (slabs travel by
    # name); spawn is the portable fallback. See docs/PARALLELISM.md for
    # the fork-with-threads caveat and why worker kernels stay pure.
    return "fork" if "fork" in methods else "spawn"


def default_process_pool_size() -> int:
    """``REPRO_PROCPOOL_SIZE`` or min(4, cpus visible to this process)."""
    override = os.environ.get(PROCPOOL_SIZE_ENV)
    if override:
        try:
            size = int(override)
        except ValueError:
            raise ReproError(
                f"{PROCPOOL_SIZE_ENV} must be an integer, got {override!r}"
            ) from None
        if size < 1:
            raise ReproError(f"{PROCPOOL_SIZE_ENV} must be >= 1, got {size}")
        return size
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


def available() -> bool:
    """True when this platform can run the process backend (cached probe).

    The probe creates a tiny shared segment and round-trips one task
    through a single worker; sandboxes that forbid process creation or
    ``/dev/shm`` fail it cleanly and every caller degrades to threads.
    ``REPRO_PROCPOOL=0`` short-circuits to False.
    """
    global _available, _unavailable_reason
    if os.environ.get(PROCPOOL_ENV) == "0":
        return False
    with _avail_lock:
        if _available is None:
            try:
                slab = SharedSlab.create(np.arange(4, dtype=np.int64))
                try:
                    assert attach_view(slab.meta)[2] == 2
                finally:
                    # drop our own attachment before unlinking
                    cached = _attached.pop(slab.name, None)
                    if cached is not None:
                        cached[0].close()
                    slab.release()
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                ctx = multiprocessing.get_context(_start_method())
                with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as ex:
                    ex.submit(_probe_task).result(timeout=60)
                _available = True
            except BaseException as exc:  # noqa: BLE001 — any failure means "no"
                _available = False
                _unavailable_reason = repr(exc)
                obs.get_event_log().warning(
                    "procpool.unavailable", reason=_unavailable_reason
                )
        return _available


def unavailable_reason() -> Optional[str]:
    """Why the probe failed, for ``/healthz``-style diagnostics."""
    return _unavailable_reason


def _mark_unavailable(reason: str) -> None:
    """Record a mid-run backend failure; future callers degrade."""
    global _available, _unavailable_reason
    with _avail_lock:
        _available = False
        _unavailable_reason = reason
    obs.get_event_log().warning("procpool.degraded", reason=reason)
    registry = obs.get_registry()
    if registry.enabled:
        registry.counter(
            "perf_pool_degraded_total",
            "Fan-outs that fell back to a weaker backend.",
            labels=("wanted", "got"),
        ).labels("process", "thread").inc()


def reset_probe() -> None:
    """Forget the cached probe verdict (tests)."""
    global _available, _unavailable_reason
    with _avail_lock:
        _available = None
        _unavailable_reason = None


# ----------------------------------------------------------------------
# The process pool
# ----------------------------------------------------------------------


class _ProxyFuture:
    """Unwraps a worker's ``(status, payload, elapsed)`` envelope."""

    def __init__(self, inner, pool: "ProcessWorkerPool", label: str):
        self._inner = inner
        self._pool = pool
        self._label = label

    def envelope(self, timeout: Optional[float] = None) -> tuple:
        """The raw ``(status, payload)`` pair, metrics recorded."""
        status, payload, elapsed = self._inner.result(timeout)
        self._pool._record_task(elapsed)
        return status, payload

    def result(self, timeout: Optional[float] = None):
        status, payload = self.envelope(timeout)
        if status == "err":
            self._pool._raise_remote(payload, self._label)
        return payload


class ProcessWorkerPool:
    """A bounded ``ProcessPoolExecutor`` behind the instrumented pool API.

    Mirrors :class:`repro.perf.pool.WorkerPool`'s surface (``size``,
    ``name``, ``submit().result()``, ``shutdown``) so
    :func:`repro.perf.pool.parallel_map` and
    :func:`~repro.perf.pool.parallel_matvec` treat both backends
    uniformly. Workers are started lazily on first submit.
    """

    backend = "process"

    def __init__(self, size: Optional[int] = None, name: str = "proc"):
        if size is None:
            size = default_process_pool_size()
        if size < 1:
            raise ReproError(f"pool size must be >= 1, got {size}")
        self.size = int(size)
        self.name = name
        self._executor = None
        self._lock = threading.Lock()
        registry = obs.get_registry()
        if registry.enabled:
            registry.gauge(
                "perf_pool_size", "Configured worker count per pool.", labels=("pool",)
            ).labels(self.name).set(float(self.size))
            registry.gauge(
                "perf_pool_backend",
                "Backend per pool (1 = active): thread or process.",
                labels=("pool", "backend"),
            ).labels(self.name, self.backend).set(1.0)

    def __repr__(self) -> str:
        return f"ProcessWorkerPool(name={self.name!r}, size={self.size})"

    def _ensure_executor(self):
        with self._lock:
            if self._executor is None:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                ctx = multiprocessing.get_context(_start_method())
                self._executor = ProcessPoolExecutor(
                    max_workers=self.size, mp_context=ctx
                )
            return self._executor

    def submit(self, fn: Callable, *args, label: str = "task", **kwargs) -> _ProxyFuture:
        """Schedule picklable ``fn(*args, **kwargs)`` in a worker process.

        The current trace id travels with the task and is bound in the
        worker; failures surface as :class:`PoolTaskError` with the
        worker's traceback attached.
        """
        trace_id = obs.current_trace_id()
        try:
            inner = self._ensure_executor().submit(
                _run_in_worker, fn, args, kwargs, trace_id
            )
        except BaseException as exc:  # executor refused to start
            _mark_unavailable(repr(exc))
            raise ProcpoolUnavailable(f"cannot start process pool: {exc!r}") from exc
        return _ProxyFuture(inner, self, label)

    def run_kernel(
        self,
        kernel: Callable,
        arrays: Dict[str, Any],
        tasks: Sequence[tuple],
        label: str = "kernel",
    ) -> List[Any]:
        """Fan ``kernel(arrays, *task)`` over the workers, slabs shared once.

        ``arrays`` values may be ndarrays (shared for this call, then
        released) or pre-built :class:`SharedSlab`\\ s (reused, kept
        alive by their owner — the cached CSR slabs). Results come back
        in task order. *Infrastructure* failures (cannot share, cannot
        start, a worker process died) mark the backend down and raise
        :class:`ProcpoolUnavailable` so callers degrade; *task*
        failures re-raise the worker's own exception and leave the
        backend up — a bug in one kernel is not a platform problem.
        """
        ephemeral: List[SharedSlab] = []
        metas: Dict[str, tuple] = {}
        envelopes: List[tuple] = []
        try:
            for key, value in arrays.items():
                if isinstance(value, SharedSlab):
                    metas[key] = value.meta
                else:
                    slab = SharedSlab.create(np.asarray(value))
                    ephemeral.append(slab)
                    metas[key] = slab.meta
            trace_id = obs.current_trace_id()
            with obs.get_tracer().span(
                "pool.task", pool=self.name, task=label, backend=self.backend,
                tasks=len(tasks),
            ):
                executor = self._ensure_executor()
                futures = [
                    executor.submit(_invoke_kernel, kernel, metas, tuple(task), trace_id)
                    for task in tasks
                ]
                for index, future in enumerate(futures):
                    proxy = _ProxyFuture(future, self, f"{label}[{index}]")
                    envelopes.append(proxy.envelope())
        except BaseException as exc:  # broken pool / cannot share / cannot start
            _mark_unavailable(repr(exc))
            raise ProcpoolUnavailable(repr(exc)) from exc
        finally:
            for slab in ephemeral:
                slab.release()
        results = []
        for index, (status, payload) in enumerate(envelopes):
            if status == "err":
                self._raise_remote(payload, f"{label}[{index}]")
            results.append(payload)
        return results

    def run_kernel_into(
        self,
        kernel: Callable,
        arrays: Dict[str, Any],
        tasks: Sequence[tuple],
        out: np.ndarray,
        label: str = "kernel",
    ) -> np.ndarray:
        """:meth:`run_kernel` with *streamed* reduction into ``out``.

        Every task must be a ``(start, stop, ...)`` tuple whose kernel
        result is exactly ``out[start:stop]``; each chunk is written into
        its disjoint slice **in completion order** (``as_completed``), so
        the parent overlaps the reduction with still-running workers
        instead of concatenating serially after the slowest one. Slices
        are disjoint by construction (``chunk_ranges``), so completion
        order cannot change the filled vector — results stay bitwise
        identical to :meth:`run_kernel` + ``np.concatenate``. The error
        contract is unchanged: task failures re-raise the first failure
        *in task order* (after all tasks settle), infrastructure
        failures mark the backend down and raise
        :class:`ProcpoolUnavailable`.
        """
        from concurrent.futures import as_completed

        ephemeral: List[SharedSlab] = []
        metas: Dict[str, tuple] = {}
        errors: Dict[int, tuple] = {}
        try:
            for key, value in arrays.items():
                if isinstance(value, SharedSlab):
                    metas[key] = value.meta
                else:
                    slab = SharedSlab.create(np.asarray(value))
                    ephemeral.append(slab)
                    metas[key] = slab.meta
            trace_id = obs.current_trace_id()
            with obs.get_tracer().span(
                "pool.task", pool=self.name, task=label, backend=self.backend,
                tasks=len(tasks),
            ):
                executor = self._ensure_executor()
                index_of = {
                    executor.submit(
                        _invoke_kernel, kernel, metas, tuple(task), trace_id
                    ): index
                    for index, task in enumerate(tasks)
                }
                for future in as_completed(index_of):
                    index = index_of[future]
                    proxy = _ProxyFuture(future, self, f"{label}[{index}]")
                    status, payload = proxy.envelope()
                    if status == "err":
                        errors[index] = payload
                        continue
                    start, stop = tasks[index][0], tasks[index][1]
                    out[start:stop] = payload
        except BaseException as exc:  # broken pool / cannot share / cannot start
            _mark_unavailable(repr(exc))
            raise ProcpoolUnavailable(repr(exc)) from exc
        finally:
            for slab in ephemeral:
                slab.release()
        if errors:
            first = min(errors)
            self._raise_remote(errors[first], f"{label}[{first}]")
        return out

    def map_batched(
        self, fn: Callable, items: Sequence[Any], label: str = "map"
    ) -> List[Any]:
        """``[fn(item) for item in items]`` chunked into per-worker batches.

        Preserves order and the serial error contract: the first failing
        *input position* re-raises the worker's original exception (a
        :class:`PoolTaskError` with the worker traceback chained as its
        cause), exactly where the serial loop would raise — and does
        *not* mark the backend down. Only infrastructure failures
        (broken pool, cannot start) degrade, as
        :class:`ProcpoolUnavailable`. ``fn`` and the items must pickle;
        callers pre-check and degrade.
        """
        from repro.perf.pool import chunk_ranges

        trace_id = obs.current_trace_id()
        bounds = chunk_ranges(len(items), self.size * 4)
        batches: List[List[tuple]] = []
        try:
            with obs.get_tracer().span(
                "pool.task", pool=self.name, task=label, backend=self.backend,
                tasks=len(bounds),
            ):
                executor = self._ensure_executor()
                futures = [
                    executor.submit(
                        _invoke_map_batch, fn, list(items[start:stop]), trace_id
                    )
                    for start, stop in bounds
                ]
                for index, future in enumerate(futures):
                    proxy = _ProxyFuture(future, self, f"{label}[{index}]")
                    batches.append(proxy.result())
        except PoolTaskError:
            raise  # the batch wrapper itself failed remotely: a task error
        except BaseException as exc:
            if isinstance(exc.__cause__, PoolTaskError):
                raise  # a re-raised original worker exception: a task error
            _mark_unavailable(repr(exc))
            raise ProcpoolUnavailable(repr(exc)) from exc
        flattened: List[Any] = []
        for batch in batches:
            for status, payload in batch:
                if status == "err":
                    self._raise_remote(payload, label)
                flattened.append(payload)
        return flattened

    def _record_task(self, elapsed: float) -> None:
        registry = obs.get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "perf_pool_tasks_total", "Tasks completed per pool.", labels=("pool",)
        ).labels(self.name).inc()
        registry.histogram(
            "perf_pool_task_seconds",
            "Execution seconds per pool task.",
            labels=("pool",),
        ).labels(self.name).observe(elapsed)

    def _raise_remote(self, payload: tuple, label: str):
        """Re-raise a worker failure: original type when it pickled.

        The :class:`PoolTaskError` carrying the worker's formatted
        traceback is chained as ``__cause__``, so the real failure site
        is always visible, while ``except ValueError`` style handling —
        and the serial loop's contract — keeps working.
        """
        carried, message, remote_tb = payload
        self._record_failure()
        wrapper = PoolTaskError(
            f"process-pool task {label!r} failed: {message}", remote_tb
        )
        if carried is not None:
            raise carried from wrapper
        raise wrapper

    def _record_failure(self) -> None:
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "errors_total",
                "Errored spans per component (failures are countable, not just traceable).",
                labels=("component",),
            ).labels("procpool").inc()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker processes; the pool restarts lazily if reused."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)


# ----------------------------------------------------------------------
# Module-level default process pool
# ----------------------------------------------------------------------

_default_proc_pool: Optional[ProcessWorkerPool] = None
_default_proc_lock = threading.Lock()


def get_process_pool() -> Optional[ProcessWorkerPool]:
    """The shared process pool, or ``None`` when the backend cannot help.

    ``None`` means: the platform probe failed, ``REPRO_PROCPOOL=0``, or
    only one worker would be configured (a one-process pool is pure
    overhead — the caller's thread/serial path is strictly better).
    """
    if not available():
        return None
    if default_process_pool_size() <= 1:
        return None
    global _default_proc_pool
    with _default_proc_lock:
        if _default_proc_pool is None:
            _default_proc_pool = ProcessWorkerPool(name="cpu")
        return _default_proc_pool


def shutdown_process_pool() -> None:
    """Tear down the shared process pool (tests, interpreter exit)."""
    global _default_proc_pool
    with _default_proc_lock:
        pool, _default_proc_pool = _default_proc_pool, None
    if pool is not None:
        pool.shutdown()


# ----------------------------------------------------------------------
# Shared-memory matvec (the solver-facing entry point)
# ----------------------------------------------------------------------


def shared_matvec(matrix, x, chunks: int, pool: ProcessWorkerPool) -> np.ndarray:
    """Row-partitioned ``matrix @ x`` across worker processes.

    The CSR slabs are shared once per matrix (cached); ``x`` is shared
    for this call only. Each chunk runs :func:`_matvec_kernel` — the
    exact ``matvec_rows`` kernel — and streams into its disjoint slice
    of one preallocated output as workers finish
    (:meth:`ProcessWorkerPool.run_kernel_into`), so the result is
    bitwise identical to ``matrix.matvec(x)`` with no serial
    concatenate in the parent.
    """
    from repro.perf.pool import chunk_ranges

    x = np.asarray(x, dtype=float)
    arrays: Dict[str, Any] = dict(shared_csr_slabs(matrix))
    arrays["x"] = x
    bounds = chunk_ranges(matrix.nrows, chunks)
    out = np.empty(matrix.nrows, dtype=float)
    return pool.run_kernel_into(_matvec_kernel, arrays, bounds, out, label="matvec")


def picklable(*objects: Any) -> bool:
    """Cheap pre-flight: can these objects cross a process boundary?"""
    try:
        for obj in objects:
            pickle.dumps(obj)
        return True
    except Exception:
        return False
