"""A generation-stamped LRU cache for the hot query path.

Invalidation strategy (documented in docs/PERFORMANCE.md): every entry is
stamped with the repository *generation* — the SMR's monotonically
increasing mutation counter — at the moment it is stored. A lookup only
hits when the stored stamp equals the caller's current generation; an
entry from an older generation counts as *stale*, is evicted lazily, and
the caller recomputes. Writers therefore never touch the cache: a page
edit or a 10k-record bulk load "invalidates" everything by incrementing
one integer.

Compared with eager flushing this keeps writes O(1), and compared with
TTLs it is exact: a result can never be served across a mutation, and is
never discarded while the repository is unchanged.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

from repro import obs
from repro.errors import ReproError


@dataclass
class CacheStats:
    """Plain-integer bookkeeping, mirrored into the metrics registry.

    ``stale`` counts lookups that found an entry from an older
    generation — the lazy-invalidation analogue of a flush.
    """

    hits: int = 0
    misses: int = 0
    stale: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.stale

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0


class GenerationalLruCache:
    """LRU cache whose entries expire when the data generation moves on.

    Parameters
    ----------
    capacity:
        Maximum number of entries; least-recently-used entries are
        evicted beyond it.
    name:
        Label under which the cache reports to the metrics registry
        (``perf_cache_*_total{cache=<name>}``).
    """

    def __init__(self, capacity: int = 256, name: str = "query_results"):
        if capacity <= 0:
            raise ReproError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _bump(self, event: str) -> None:
        setattr(self.stats, event, getattr(self.stats, event) + 1)
        obs.get_registry().counter(
            f"perf_cache_{event}_total",
            f"Result-cache {event} per cache name.",
            labels=("cache",),
        ).labels(self.name).inc()

    def get(self, key: Hashable, generation: int) -> Optional[Any]:
        """The cached value for ``key`` at ``generation``, else ``None``.

        An entry stored under an older generation is treated as absent
        (and dropped); it counts as ``stale`` rather than ``misses`` so
        the two cold-path causes stay distinguishable in ``/metrics``.
        """
        return self.lookup(key, generation)[0]

    def lookup(self, key: Hashable, generation: int) -> Tuple[Optional[Any], str]:
        """Like :meth:`get`, but also returns the verdict: hit/miss/stale.

        Callers that narrate their cache decision (the engine's per-query
        log event, slow-query diagnostics) need the verdict, not just the
        value — a miss and a lazily-invalidated stale entry have the same
        value (``None``) but very different operational meanings.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._bump("misses")
                return None, "miss"
            stored_generation, value = entry
            if stored_generation != generation:
                del self._entries[key]
                self._bump("stale")
                obs.get_event_log().debug(
                    "perf.cache_stale",
                    cache=self.name,
                    stored_generation=stored_generation,
                    current_generation=generation,
                )
                return None, "stale"
            self._entries.move_to_end(key)
            self._bump("hits")
            return value, "hit"

    def put(self, key: Hashable, generation: int, value: Any) -> None:
        """Store ``value`` under ``key`` stamped with ``generation``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (generation, value)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._bump("evictions")
            obs.get_registry().gauge(
                "perf_cache_entries",
                "Live entries per cache name.",
                labels=("cache",),
            ).labels(self.name).set(float(len(self._entries)))

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()


def result_cache_key(query, user) -> Tuple:
    """Canonical, hashable cache key for one (query, privileges) pair.

    Normalization keeps distinct-but-equivalent requests on one entry:
    keyword whitespace collapses, the kind is lower-cased, and property
    filters are order-insensitive (both strict intersection and relaxed
    union are commutative, and the match degree counts satisfied
    predicates without regard to order). Everything that *can* change the
    response stays in the key: sort/order, limit/offset, relaxed mode,
    the bounding box, and the user's readable-kind whitelist — two users
    with different privileges never share an entry.
    """
    allowed = user.policy.allowed_kinds
    privileges = "*" if allowed is None else ",".join(sorted(allowed))
    bbox = query.bbox
    return (
        " ".join(query.keyword.split()).lower(),
        (query.kind or "").lower(),
        tuple(sorted((f.prop, f.op, repr(f.value)) for f in query.filters)),
        query.sort,
        query.descending,
        query.limit,
        query.offset,
        query.relaxed,
        (bbox.south, bbox.west, bbox.north, bbox.east) if bbox else None,
        privileges,
    )
