"""The demo web application: JSON + SVG endpoints over the search engine.

Endpoints (all under ``/api``):

    GET  /api/search?q=<compact query>        ranked results
         (&explain=1 attaches the per-constraint evaluation plan;
          &explain=full runs the pipeline cache-bypassed and attaches
          the full provenance record — constraint waterfall with wall
          times and selectivities — plus a per-result PageRank score
          decomposition into top-k in-link contributions, dangling and
          teleport mass)
    GET  /api/page/{title}                    one page's metadata
    GET  /api/autocomplete/title?prefix=
    GET  /api/autocomplete/property?prefix=
    GET  /api/values?prop=&kind=              dynamic drop-down values
    GET  /api/facets?q=&prop=                 facet counts
    GET  /api/recommend?q=&k=                 recommendations
    GET  /api/pagerank/top?k=                 highest-ranked pages
    GET  /api/tags/cloud?top=                 tag cloud (JSON)
    GET  /api/tags/cloud.svg?top=             tag cloud (SVG)
    POST /api/tags                            {"page": ..., "tag": ...}
    GET  /api/viz/map.svg?q=                  result map
    GET  /api/viz/facets.svg?q=&prop=&chart=  bar|pie facet chart

Observability (outside ``/api``):

    GET  /metrics                             Prometheus text exposition
         (&format=openmetrics or an OpenMetrics Accept header switches
          to OpenMetrics 1.0 with trace-id exemplars on histogram
          buckets — the p99 bucket links to a recorded trace)
    GET  /api/timeseries?metric=&window=      sampled history (JSON):
         points per label set, counter rates, windowed percentiles
    GET  /api/alerts                          SLO status, firing burn-rate
         alerts and the bounded alert history
    GET  /explore?q=                          slow-query explorer (HTML):
         constraint waterfall + link-contribution breakdown
    GET  /explore/waterfall.svg?q=            the waterfall as SVG
    GET  /explore/contributions.svg?q=&title= score breakdown as SVG
    GET  /debug/trace?k=&trace_id=            recent span trees (JSON)
    GET  /debug/logs?level=&trace_id=&k=      structured event log (JSON)
    GET  /debug/profile?k=                    span-path self/cum profile
    GET  /debug/convergence?solver=           solver residual histories
    GET  /debug/plan?sql=|q=                  cost-based plans + catalog
    GET  /debug/slow                          slowest-query reservoir
    GET  /debug/provenance?trace_id=&k=       recent provenance records
    GET  /debug                               index of every operator
         surface with a one-line description
    GET  /debug/dashboard                     live operations dashboard
         (HTML: firing alerts, SLO burn rates, and the sparkline grid
          served by /debug/dashboard.svg — QPS, latency percentiles,
          cache hit ratio, pool queue depth, solver iterations,
          ingestion staleness lag, process RSS)
    GET  /healthz                             component health probes
         (including an ``slo`` probe: a firing fast-burn alert reports
          the service degraded even when every component passes)

Every request passes through :class:`MetricsMiddleware`, which mints a
request-scoped **trace id**, attaches it to the root span, every log
record and an ``X-Trace-Id`` header on every response (error responses
included), and records per-endpoint request counters and latency
histograms at the WSGI level. A user-reported slow request is therefore
fully reconstructable offline: its ``X-Trace-Id`` finds the span tree in
``/debug/trace``, the correlated records in ``/debug/logs`` and — when a
ranking solve ran — the residual series in ``/debug/convergence``.

``GET /api/stats`` additionally reports the engine's result-cache
statistics (hits, misses, stale lookups, generation) next to the query
latency percentiles, so cache effectiveness is observable without
scraping ``/metrics``. The ``/debug/*`` surfaces are privilege-gated:
``create_app(..., debug=False)`` turns them into 403s for deployments
where traces and logs must not be public, while ``/healthz`` stays open
for load balancers.

Errors surface as JSON with appropriate status codes; the engine's
exception hierarchy maps 1:1 onto 400s.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional
from urllib.parse import quote
from wsgiref.simple_server import make_server

from repro import obs
from repro.core.engine import AdvancedSearchEngine
from repro.errors import ReproError
from repro.tagging.interface import TaggingSystem
from repro.viz.bar import BarChart
from repro.viz.maprender import MapMarker, MapRenderer
from repro.viz.pie import PieChart
from repro.viz.sparkline import SparklineGrid, SparklinePanel
from repro.viz.tagcloud import render_tag_cloud_svg
from repro.viz.waterfall import WaterfallChart
from repro.web.http import (
    HtmlResponse,
    JsonResponse,
    Request,
    Response,
    Router,
    SvgResponse,
    TextResponse,
)

_INDEX_HTML = """<!doctype html>
<html><head><title>Sensor Metadata Search (ICDE'11 reproduction)</title></head>
<body>
<h1>Advanced Sensor Metadata Search</h1>
<p><a href="/search">Interactive search page</a></p>
<p>JSON/SVG API endpoints:</p>
<ul>
  <li><a href="/api/stats">/api/stats</a></li>
  <li><a href="/api/suggest?q=wnd">/api/suggest?q=</a></li>
  <li><a href="/api/search?q=kind%3Dstation">/api/search?q=&lt;query&gt;</a></li>
  <li>/api/page/{title}</li>
  <li><a href="/api/autocomplete/title?prefix=Station">/api/autocomplete/title?prefix=</a></li>
  <li><a href="/api/autocomplete/property?prefix=s">/api/autocomplete/property?prefix=</a></li>
  <li><a href="/api/values?prop=status&kind=station">/api/values?prop=&amp;kind=</a></li>
  <li><a href="/api/facets?q=kind%3Dsensor&prop=sensor_type">/api/facets?q=&amp;prop=</a></li>
  <li><a href="/api/recommend?q=kind%3Dsensor">/api/recommend?q=&amp;k=</a></li>
  <li>/api/related/{title}?k=</li>
  <li>/api/snippet/{title}?q=</li>
  <li><a href="/api/pagerank/top?k=10">/api/pagerank/top?k=</a></li>
  <li><a href="/api/tags/cloud">/api/tags/cloud</a> |
      <a href="/api/tags/cloud.svg">/api/tags/cloud.svg</a> |
      POST /api/tags</li>
  <li><a href="/api/viz/map.svg?q=kind%3Dstation">/api/viz/map.svg?q=</a></li>
  <li><a href="/api/viz/facets.svg?q=kind%3Dstation&prop=status&chart=pie">/api/viz/facets.svg?q=&amp;prop=&amp;chart=bar|pie</a></li>
  <li><a href="/metrics">/metrics</a> (Prometheus;
      <a href="/metrics?format=openmetrics">?format=openmetrics</a> adds exemplars) |
      <a href="/healthz">/healthz</a> (component health)</li>
  <li><a href="/api/timeseries?metric=http_requests_total">/api/timeseries?metric=&amp;window=</a> (sampled history) |
      <a href="/api/alerts">/api/alerts</a> (SLO burn-rate alerts)</li>
  <li><a href="/explore?q=kind%3Dsensor">/explore?q=</a> (query provenance explorer)</li>
  <li><a href="/debug">/debug</a> (operator surface index) |
      <a href="/debug/dashboard">/debug/dashboard</a> (live dashboard)</li>
  <li><a href="/debug/trace">/debug/trace</a> (recent spans) |
      <a href="/debug/logs">/debug/logs</a> (event log) |
      <a href="/debug/profile">/debug/profile</a> (span profile) |
      <a href="/debug/convergence">/debug/convergence</a> (solver residuals) |
      <a href="/debug/plan?q=kind%3Dstation">/debug/plan?sql=|q=</a> (query plans) |
      <a href="/debug/slow">/debug/slow</a> (slowest queries) |
      <a href="/debug/provenance">/debug/provenance</a> (provenance ring)</li>
</ul>
<p>Query syntax: <code>keyword=wind kind=sensor elevation_m&gt;=2000 sort=pagerank
order=desc limit=20 offset=20 relaxed=true bbox=46,6.8,47,10.5</code></p>
</body></html>
"""


#: Default trailing window the dashboard plots (ten minutes of ticks).
_DASHBOARD_WINDOW_SECONDS = 600.0

#: Every operator surface, for the ``/debug`` index page. Paths may carry
#: illustrative query strings; descriptions are one line each.
_DEBUG_SURFACES = [
    ("/debug/dashboard",
     "Live operations dashboard: sparkline grid, SLO burn rates, firing alerts."),
    ("/api/alerts", "SLO status, firing alerts and alert history (JSON)."),
    ("/api/timeseries?metric=http_requests_total",
     "Sampled metric history: points, rates, windowed percentiles (JSON)."),
    ("/explore?q=kind%3Dsensor",
     "Slow-query explorer: constraint waterfall + score provenance (HTML)."),
    ("/debug/trace", "Recent span trees, filterable by trace_id (JSON)."),
    ("/debug/logs", "Structured event log: level=, trace_id=, component=, k= (JSON)."),
    ("/debug/profile", "Span-path self/cumulative time profile (JSON)."),
    ("/debug/convergence", "PageRank solver residual histories (JSON)."),
    ("/debug/plan?q=kind%3Dstation",
     "Cost-based query plans and catalog statistics: sql= or q= (JSON)."),
    ("/debug/slow", "Slowest-query reservoir with trace ids and plan snapshots (JSON)."),
    ("/debug/provenance", "Recent query-provenance records (JSON)."),
    ("/metrics", "Prometheus/OpenMetrics exposition (text)."),
    ("/healthz", "Component + SLO health probes (JSON; open, ungated)."),
    ("/api/stats", "Corpus, cache and latency statistics snapshot (JSON)."),
]


def _sampler_status(sampler) -> Dict[str, Any]:
    """The sampler's self-description, shared by several JSON payloads."""
    return {
        "running": sampler.running,
        "interval_seconds": sampler.interval,
        "ticks": sampler.ticks,
        "last_tick_at": sampler.last_tick_at,
        "last_scrape_seconds": sampler.last_scrape_seconds,
        "series": len(sampler.store),
        "dropped_series": sampler.store.dropped_series,
        "probe_errors": sampler.probe_errors,
    }


def _fmt_burn(value) -> str:
    return "n/a" if value is None else f"{value:.2f}x"


def _dashboard_panels(sampler, window: float, now=None) -> list:
    """Assemble the dashboard's sparkline panels from the sampler's store.

    Panels read only the :class:`~repro.obs.timeseries.TimeSeriesStore` —
    the dashboard shows what the sampler retained, never a fresh scrape —
    so rendering is cheap and agrees with ``/api/timeseries``. A metric
    the store has not seen yet renders as that panel's "no data" state
    instead of failing.
    """
    store = sampler.store
    evaluator = sampler.evaluator
    firing = (
        {alert["slo"] for alert in evaluator.firing()}
        if evaluator is not None
        else set()
    )
    # Percentiles are over a short trailing window per tick; a handful of
    # sampler intervals keeps them responsive without being jittery.
    quantile_window = max(30.0, sampler.interval * 6)

    def quantile_points(name: str, q: float) -> list:
        series = store.get(name)
        if not isinstance(series, obs.HistogramSeries):
            return []
        return series.quantile_series(q, quantile_window, window, now)

    panels = [
        SparklinePanel(
            "HTTP requests /s",
            store.summed_rate_series("http_requests_total", window, now),
            unit="/s",
            alerting="availability" in firing,
        ),
        SparklinePanel(
            "query latency p50", quantile_points("engine_query_seconds", 0.5), unit="s"
        ),
        SparklinePanel(
            "query latency p95",
            quantile_points("engine_query_seconds", 0.95),
            unit="s",
            threshold=0.25,
            alerting="search_latency" in firing,
        ),
        SparklinePanel(
            "query latency p99", quantile_points("engine_query_seconds", 0.99), unit="s"
        ),
    ]

    # Cache hit ratio: per-tick hit rate over per-tick lookup rate. The
    # summed-rate series are merged by timestamp, so one division per
    # tick reconstructs the family-level ratio.
    hits = dict(store.summed_rate_series("perf_cache_hits_total", window, now))
    lookups = dict(hits)
    for name in ("perf_cache_misses_total", "perf_cache_stale_total"):
        for t, r in store.summed_rate_series(name, window, now):
            lookups[t] = lookups.get(t, 0.0) + r
    panels.append(
        SparklinePanel(
            "cache hit ratio",
            [
                (t, hits.get(t, 0.0) / total)
                for t, total in sorted(lookups.items())
                if total > 0
            ],
        )
    )
    panels.append(
        SparklinePanel(
            "pool queue depth",
            store.summed_points("perf_pool_queue_depth", window, now),
        )
    )
    panels.append(
        SparklinePanel(
            "solver iterations",
            store.summed_points("pagerank_convergence_last_iterations", window, now),
        )
    )
    panels.append(
        SparklinePanel(
            "ranker staleness lag",
            store.summed_points("ranking_staleness_generations", window, now),
            alerting="ranker_freshness" in firing,
        )
    )
    panels.append(
        SparklinePanel(
            "shard staleness lag (sum)",
            store.summed_points("ranking_shard_staleness_generations", window, now),
        )
    )
    panels.append(
        SparklinePanel(
            "resident memory",
            store.summed_points("process_resident_memory_bytes", window, now),
            unit="B",
        )
    )
    return panels


def _html_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _keyword_of(query_text: str) -> str:
    """Best-effort keyword extraction for snippet highlighting."""
    from repro.core.query import parse_query

    try:
        return parse_query(query_text).keyword
    except Exception:
        return ""


def _result_payload(result) -> Dict[str, Any]:
    return {
        "title": result.title,
        "kind": result.kind,
        "score": result.score,
        "relevance": result.relevance,
        "pagerank": result.pagerank,
        "match_degree": result.match_degree,
        "annotations": result.annotations,
        "location": (
            {"lat": result.location.lat, "lon": result.location.lon}
            if result.location
            else None
        ),
    }


def create_app(
    engine: AdvancedSearchEngine,
    tagging: Optional[TaggingSystem] = None,
    observations=None,
    debug: bool = True,
    sampler=None,
    start_sampler: bool = False,
):
    """Build the WSGI application over ``engine``.

    ``tagging`` defaults to an empty tagging system; ``observations`` is
    an optional :class:`~repro.observations.store.ObservationStore` —
    when given, the ``/api/observations/...`` endpoints serve live data.
    ``debug=False`` locks the ``/debug/*`` introspection endpoints (logs,
    traces, profile, convergence) behind 403s for deployments where that
    detail must not be public; ``/metrics`` and ``/healthz`` stay open as
    they carry only aggregates and statuses.

    ``sampler`` is the :class:`~repro.obs.timeseries.MetricsSampler`
    feeding ``/api/timeseries``, ``/api/alerts`` and the dashboard
    (default: the process-wide :func:`repro.obs.get_sampler`). Its
    background thread is **not** started unless ``start_sampler=True`` —
    tests build apps constantly and must not leak threads; production
    entrypoints (:func:`serve`) opt in. The app exposes the sampler as
    ``app.sampler`` and an ``app.close()`` that stops the thread only if
    this call started it.
    """
    tagging = tagging or TaggingSystem()
    router = Router()

    sampler = sampler if sampler is not None else obs.get_sampler()

    def _engine_probe(registry) -> None:
        # Refresh pull-style gauges just before each scrape: the ranker's
        # staleness lag is computed from generation stamps, not pushed by
        # events, so without this the series would never update.
        engine.ranker.record_staleness()

    # Keyed registration: repeated create_app() calls replace this probe
    # on the shared default sampler instead of stacking duplicates.
    sampler.set_probe("engine", _engine_probe)

    def _debug_guard() -> Optional[Response]:
        if debug:
            return None
        return JsonResponse(
            {"error": "debug endpoints are disabled on this deployment"},
            status="403 Forbidden",
        )

    @router.get("/api/observations/{sensor}")
    def observation_stats(request: Request, sensor: str) -> Response:
        if observations is None:
            return JsonResponse(
                {"error": "no observation store configured"}, status="404 Not Found"
            )
        window = int(request.params.get("window", "288"))
        stats = observations.window_stats(sensor, window=window)
        latest = observations.latest(sensor)
        return JsonResponse(
            {
                "sensor": sensor,
                "window": window,
                "count": stats.count,
                "min": stats.minimum,
                "max": stats.maximum,
                "mean": stats.mean,
                "last": stats.last,
                "latest_tick": latest[0] if latest else None,
                "stale": observations.is_stale(sensor),
            }
        )

    @router.get("/api/observations/{sensor}/series.svg")
    def observation_series(request: Request, sensor: str) -> Response:
        if observations is None:
            return JsonResponse(
                {"error": "no observation store configured"}, status="404 Not Found"
            )
        from repro.viz.line import LineChart

        bucket = int(request.params.get("bucket", "12"))
        chart = LineChart(title=sensor, x_label="tick", y_label="value")
        chart.add_series("readings", observations.series(sensor).downsample(bucket))
        return SvgResponse(chart.to_svg())

    def _search(request: Request):
        text = request.params.get("q", "")
        return engine.search(engine.parse(text))

    @router.get("/")
    def index(request: Request) -> Response:
        return HtmlResponse(_INDEX_HTML)

    @router.get("/search")
    def search_page(request: Request) -> Response:
        """The human-facing search form + results page (Fig. 7 analog)."""
        text = request.params.get("q", "")
        body = [
            "<!doctype html><html><head><title>Metadata search</title></head><body>",
            "<h1>Advanced metadata search</h1>",
            '<form method="get" action="/search">',
            f'<input name="q" size="70" value="{_html_escape(text)}" '
            'placeholder="keyword=wind kind=sensor sort=pagerank"/>',
            '<button type="submit">Search</button></form>',
        ]
        if text.strip():
            try:
                results = engine.search(engine.parse(text))
            except ReproError as exc:
                body.append(f"<p><strong>Error:</strong> {_html_escape(str(exc))}</p>")
            else:
                body.append(
                    f"<p>{len(results)} of {results.total_candidates} candidates</p>"
                )
                if not results and " " not in text and "=" not in text:
                    suggestions = engine.did_you_mean(text)
                    if suggestions:
                        links = ", ".join(
                            f'<a href="/search?q={_html_escape(s)}">{_html_escape(s)}</a>'
                            for s in suggestions
                        )
                        body.append(f"<p>Did you mean: {links}?</p>")
                keyword = _keyword_of(text)
                body.append("<ol>")
                for result in results:
                    snippet_html = ""
                    if keyword:
                        fragment = engine.snippet(result.title, keyword)
                        rendered = _html_escape(fragment.text).replace(
                            "**", "<b>", 1
                        )
                        # crude but adequate: alternate open/close markers
                        while "**" in rendered:
                            rendered = rendered.replace("**", "</b>", 1)
                            rendered = rendered.replace("**", "<b>", 1)
                        snippet_html = f"<br/><small>{rendered}</small>"
                    body.append(
                        f"<li><b>{_html_escape(result.title)}</b> "
                        f"({result.kind}, match {result.match_degree:.0%}, "
                        f"pagerank {result.pagerank:.4f}){snippet_html}</li>"
                    )
                body.append("</ol>")
        body.append("</body></html>")
        return HtmlResponse("".join(body))

    @router.get("/api/related/{title}")
    def related(request: Request, title: str) -> Response:
        k = int(request.params.get("k", "5"))
        pages = engine.related_pages(title, k=k)
        return JsonResponse(
            {"related": [{"title": t, "score": s} for t, s in pages]}
        )

    @router.get("/api/snippet/{title}")
    def snippet(request: Request, title: str) -> Response:
        query = request.params.get("q", "")
        result = engine.snippet(title, query)
        return JsonResponse(
            {
                "snippet": result.text,
                "matches": result.matches,
                "distinct_terms": result.distinct_terms,
            }
        )

    @router.get("/api/search")
    def search(request: Request) -> Response:
        query = engine.parse(request.params.get("q", ""))
        explain = request.params.get("explain", "")
        if explain == "full":
            # Full provenance: bypass the result cache so the waterfall
            # reflects a real pipeline run, and decompose each returned
            # page's PageRank into its fixed-point terms.
            results, provenance = engine.search_explained(query)
        else:
            results = engine.search(query)
            provenance = None
        payload = {
            "query": results.query_description,
            "total_candidates": results.total_candidates,
            "results": [_result_payload(r) for r in results],
            # The same id lands in the X-Trace-Id header; it is also
            # in the body so API clients that log payloads can quote
            # it back when reporting a slow or wrong result.
            "trace_id": obs.current_trace_id(),
        }
        if provenance is not None:
            top_k = int(request.params.get("top_k", "5"))
            payload["provenance"] = provenance.to_dict()
            for entry in payload["results"]:
                entry["score_explanation"] = engine.ranker.explain(
                    entry["title"], top_k=top_k
                )
        elif explain in ("1", "true", "yes"):
            payload["plan"] = engine.explain_search(query)
        return JsonResponse(payload)

    @router.get("/api/page/{title}")
    def page(request: Request, title: str) -> Response:
        kind = engine.smr.kind_of(title)
        return JsonResponse(
            {
                "title": engine.smr.wiki.get(title).title,
                "kind": kind,
                "annotations": dict(engine.smr.annotations(title)),
                "pagerank": engine.ranker.score(engine.smr.wiki.get(title).title),
                "revisions": engine.smr.wiki.get(title).revision_count,
            }
        )

    @router.get("/api/autocomplete/title")
    def autocomplete_title(request: Request) -> Response:
        prefix = request.params.get("prefix", "")
        return JsonResponse({"completions": engine.autocomplete.complete_title(prefix)})

    @router.get("/api/autocomplete/property")
    def autocomplete_property(request: Request) -> Response:
        prefix = request.params.get("prefix", "")
        return JsonResponse({"completions": engine.autocomplete.complete_property(prefix)})

    @router.get("/api/values")
    def values(request: Request) -> Response:
        prop = request.params.get("prop", "")
        kind = request.params.get("kind") or None
        pairs = engine.autocomplete.values_for(prop, kind=kind)
        return JsonResponse({"values": [{"value": v, "count": c} for v, c in pairs]})

    @router.get("/api/facets")
    def facets(request: Request) -> Response:
        results = _search(request)
        prop = request.params.get("prop", "")
        pairs = engine.facets(results, prop)
        return JsonResponse({"facets": [{"value": v, "count": c} for v, c in pairs]})

    @router.get("/api/recommend")
    def recommend(request: Request) -> Response:
        results = _search(request)
        k = int(request.params.get("k", "5"))
        recommendations = engine.recommend(results, k=k)
        return JsonResponse(
            {
                "recommendations": [
                    {"title": rec.title, "score": rec.score, "reasons": rec.reasons}
                    for rec in recommendations
                ]
            }
        )

    @router.get("/api/stats")
    def stats(request: Request) -> Response:
        from repro.core.stats import corpus_statistics

        report = corpus_statistics(engine.smr, top_values_for=("project", "institution"))
        registry = obs.get_registry()
        latency = registry.histogram(
            "engine_query_seconds", "Advanced-search latency in seconds."
        )
        requests_family = registry.get("http_requests_total")

        def _percentiles(histogram) -> Dict[str, Any]:
            """p50/p95/p99 with each percentile's exemplar trace id.

            The exemplar is the recorded request sitting in the same
            bucket the percentile interpolates in — so a bad p99 links
            straight to one concrete trace in ``/debug/trace``.
            """
            entry: Dict[str, Any] = {"count": histogram.count}
            for q, name in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                entry[f"{name}_seconds"] = histogram.quantile(q)
                exemplar = histogram.exemplar_for_quantile(q)
                entry[f"{name}_trace_id"] = (
                    exemplar["trace_id"] if exemplar else None
                )
            return entry

        endpoint_latency: Dict[str, Any] = {}
        http_family = registry.get("http_request_seconds")
        if http_family is not None:
            for label_values, child in http_family.samples():
                endpoint_latency[label_values[0]] = _percentiles(child)
        query_latency = _percentiles(latency)
        query_latency["mean_seconds"] = (
            latency.sum / latency.count if latency.count else 0.0
        )
        shards = None
        shard_stats = getattr(engine.smr, "shard_stats", None)
        if callable(shard_stats):
            shards = shard_stats()
            shard_staleness = getattr(engine.ranker, "shard_staleness", None)
            if callable(shard_staleness):
                staleness = {s["shard"]: s for s in shard_staleness()}
                for entry in shards:
                    lag = staleness.get(entry["shard"])
                    if lag is not None:
                        entry["ranking_lag"] = lag["lag"]
                        entry["ranking_built_at"] = lag["built_at_mutation"]
        return JsonResponse(
            {
                "page_count": report.page_count,
                "pages_per_kind": report.pages_per_kind,
                "property_coverage": report.property_coverage,
                "web_links": report.web_links.__dict__,
                "semantic_links": report.semantic_links.__dict__,
                "top_values": report.top_values,
                "query_latency": query_latency,
                "endpoint_latency": endpoint_latency,
                "http_requests_total": (
                    requests_family.total() if requests_family else 0.0
                ),
                "query_cache": engine.cache_info(),
                "catalog": engine.smr.db.catalog_stats(),
                "spatial_index": engine.spatial_index_info(),
                "shards": shards,
                "slow_queries": [
                    {"query": q, "seconds": s}
                    for q, s in engine.query_log.slow_queries(5)
                ],
                "trace_id": obs.current_trace_id(),
            }
        )

    @router.get("/metrics")
    def metrics(request: Request) -> Response:
        """Metric exposition with format negotiation.

        Default is Prometheus 0.0.4 text; ``?format=openmetrics`` or an
        ``Accept`` header naming ``application/openmetrics-text``
        switches to OpenMetrics 1.0, whose histogram bucket lines carry
        trace-id exemplars when exemplar collection is enabled.
        """
        wants_openmetrics = (
            request.params.get("format") == "openmetrics"
            or "application/openmetrics-text" in request.header("Accept")
        )
        if wants_openmetrics:
            body = obs.render_openmetrics(obs.get_registry())
            return Response(
                body.encode("utf-8"), "200 OK", obs.OPENMETRICS_CONTENT_TYPE
            )
        body = obs.render_prometheus(obs.get_registry())
        return TextResponse(body, content_type=obs.PROMETHEUS_CONTENT_TYPE)

    @router.get("/debug/trace")
    def debug_trace(request: Request) -> Response:
        guard = _debug_guard()
        if guard is not None:
            return guard
        k = int(request.params.get("k", "20"))
        trace_id = request.params.get("trace_id") or None
        return JsonResponse(
            {"traces": obs.get_tracer().recent(k, trace_id=trace_id)}
        )

    @router.get("/debug/logs")
    def debug_logs(request: Request) -> Response:
        guard = _debug_guard()
        if guard is not None:
            return guard
        records = obs.get_event_log().records(
            level=request.params.get("level") or None,
            trace_id=request.params.get("trace_id") or None,
            component=request.params.get("component") or None,
            k=int(request.params.get("k", "100")),
        )
        return JsonResponse({"count": len(records), "records": records})

    @router.get("/debug/profile")
    def debug_profile(request: Request) -> Response:
        guard = _debug_guard()
        if guard is not None:
            return guard
        k = int(request.params.get("k", "256"))
        rows = obs.profile_tracer(obs.get_tracer(), k=k)
        return JsonResponse({"traces_considered": k, "rows": rows})

    @router.get("/debug/convergence")
    def debug_convergence(request: Request) -> Response:
        guard = _debug_guard()
        if guard is not None:
            return guard
        recorder = obs.get_convergence_recorder()
        solver = request.params.get("solver") or None
        if solver is not None:
            return JsonResponse({"solver": solver, "runs": recorder.runs(solver)})
        return JsonResponse(recorder.snapshot())

    @router.get("/debug/plan")
    def debug_plan(request: Request) -> Response:
        """Planner introspection: EXPLAIN for raw SQL or a search query.

        ``sql=SELECT ...`` returns the cost-based relational plan;
        ``q=<compact query>`` returns the engine's per-constraint
        evaluation strategy (the same payload ``explain=1`` attaches to
        ``/api/search``, without running the search).
        """
        guard = _debug_guard()
        if guard is not None:
            return guard
        sql = request.params.get("sql")
        query_text = request.params.get("q")
        if sql is None and query_text is None:
            return JsonResponse(
                {"error": "pass sql=SELECT ... or q=<compact query>"},
                status="400 Bad Request",
            )
        payload: Dict[str, Any] = {}
        if sql is not None:
            payload["sql"] = sql
            payload["sql_plan"] = [
                row[0] for row in engine.smr.sql(f"EXPLAIN {sql}")
            ]
        if query_text is not None:
            payload["search_plan"] = engine.explain_search(
                engine.parse(query_text)
            )
        payload["catalog"] = engine.smr.db.catalog_stats()
        return JsonResponse(payload)

    @router.get("/debug/slow")
    def debug_slow(request: Request) -> Response:
        """The slow-query reservoir: the worst-latency searches seen.

        Each entry carries the query, its wall time, the trace id to
        pivot into ``/debug/trace`` / ``/debug/logs``, the cache verdict
        and the constraint-waterfall plan snapshot taken when the query
        ran — enough to diagnose a past slow query without reproducing
        it.
        """
        guard = _debug_guard()
        if guard is not None:
            return guard
        slowlog = obs.get_slow_query_log()
        entries = slowlog.snapshot()
        return JsonResponse(
            {
                "enabled": slowlog.enabled,
                "capacity": slowlog.capacity,
                "threshold_seconds": slowlog.threshold_seconds,
                "recorded": slowlog.recorded,
                "count": len(entries),
                "entries": entries,
            }
        )

    @router.get("/debug/provenance")
    def debug_provenance(request: Request) -> Response:
        """Recent query-provenance records, filterable by trace id."""
        guard = _debug_guard()
        if guard is not None:
            return guard
        recorder = obs.get_provenance_recorder()
        records = recorder.records(
            trace_id=request.params.get("trace_id") or None,
            k=int(request.params.get("k", "20")),
        )
        return JsonResponse(
            {"enabled": recorder.enabled, "count": len(records), "records": records}
        )

    @router.get("/api/timeseries")
    def api_timeseries(request: Request) -> Response:
        """Sampled history for one metric: points, rates, percentiles.

        Counter/gauge series return their raw points plus reset-aware
        ``delta`` and ``rate_per_second`` over the window; histogram
        series return per-tick (count, sum) points plus windowed
        p50/p95/p99 — the quantiles of only the observations that landed
        inside the window, not cumulative-since-start.
        """
        store = sampler.store
        metric = request.params.get("metric")
        if not metric:
            return JsonResponse(
                {
                    "error": "pass metric=<name> (see `metrics` for what is sampled)",
                    "metrics": store.names(),
                    "sampler": _sampler_status(sampler),
                },
                status="400 Bad Request",
            )
        window = float(request.params.get("window", "300"))
        entries = store.series(metric)
        if not entries:
            return JsonResponse(
                {
                    "error": f"no sampled series for metric {metric!r}",
                    "metrics": store.names(),
                },
                status="404 Not Found",
            )
        payload = []
        for labels, series in entries:
            if isinstance(series, obs.HistogramSeries):
                payload.append(
                    {
                        "labels": labels,
                        "kind": "histogram",
                        "rate_per_second": series.rate(window),
                        "window_mean_seconds": series.window_mean(window),
                        "percentiles": {
                            "p50": series.window_quantile(0.5, window),
                            "p95": series.window_quantile(0.95, window),
                            "p99": series.window_quantile(0.99, window),
                        },
                        "points": [
                            {"t": p[0], "count": p[3], "sum": p[2]}
                            for p in series.points(window)
                        ],
                    }
                )
            else:
                latest = series.latest()
                payload.append(
                    {
                        "labels": labels,
                        "kind": series.kind,
                        "latest": latest[1] if latest else None,
                        "delta": series.delta(window),
                        "rate_per_second": series.rate(window),
                        "points": [[t, v] for t, v in series.points(window)],
                    }
                )
        return JsonResponse(
            {"metric": metric, "window_seconds": window, "series": payload}
        )

    @router.get("/api/alerts")
    def api_alerts(request: Request) -> Response:
        """SLO state: firing alerts, bounded history, live burn rates."""
        evaluator = sampler.evaluator
        if evaluator is None:
            return JsonResponse(
                {
                    "enabled": False,
                    "firing": [],
                    "history": [],
                    "slos": [],
                    "sampler": _sampler_status(sampler),
                }
            )
        k = int(request.params.get("k", "50"))
        return JsonResponse(
            {
                "enabled": evaluator.enabled,
                "firing": evaluator.firing(),
                "history": evaluator.history(k),
                "slos": evaluator.snapshot(sampler.store, time.time()),
                "sampler": _sampler_status(sampler),
            }
        )

    @router.get("/debug")
    def debug_index(request: Request) -> Response:
        """Index of every operator surface with a one-line description."""
        guard = _debug_guard()
        if guard is not None:
            return guard
        body = [
            "<!doctype html><html><head><title>Operator surfaces</title></head><body>",
            "<h1>Operator surfaces</h1>",
            "<p>Everything the demo exposes for debugging and operating "
            "the service, in one place.</p>",
            "<ul>",
        ]
        for path, description in _DEBUG_SURFACES:
            body.append(
                f'<li><a href="{_html_escape(path)}">'
                f"{_html_escape(path.split('?')[0])}</a> — "
                f"{_html_escape(description)}</li>"
            )
        body.append("</ul></body></html>")
        return HtmlResponse("".join(body))

    @router.get("/debug/dashboard.svg")
    def debug_dashboard_svg(request: Request) -> Response:
        """The dashboard's sparkline grid as a standalone SVG document."""
        guard = _debug_guard()
        if guard is not None:
            return guard
        window = float(
            request.params.get("window", str(_DASHBOARD_WINDOW_SECONDS))
        )
        firing = (
            sampler.evaluator.firing() if sampler.evaluator is not None else []
        )
        subtitle = (
            f"sampler {'running' if sampler.running else 'stopped'} | "
            f"interval {sampler.interval:g}s | ticks {sampler.ticks} | "
            f"{len(sampler.store)} series | {len(firing)} firing alert(s)"
        )
        grid = SparklineGrid(
            _dashboard_panels(sampler, window),
            columns=3,
            title="Operations dashboard",
            subtitle=subtitle,
        )
        return SvgResponse(grid.to_svg())

    @router.get("/debug/dashboard")
    def debug_dashboard(request: Request) -> Response:
        """The operator dashboard: alerts + SLO table + sparkline grid.

        Auto-refreshes every 10 s; the grid itself is the sibling
        ``/debug/dashboard.svg`` so it can be embedded or validated
        standalone.
        """
        guard = _debug_guard()
        if guard is not None:
            return guard
        evaluator = sampler.evaluator
        firing = evaluator.firing() if evaluator is not None else []
        body = [
            "<!doctype html><html><head><title>Operations dashboard</title>",
            '<meta http-equiv="refresh" content="10"/></head><body>',
            "<h1>Operations dashboard</h1>",
            f"<p>sampler: <b>{'running' if sampler.running else 'stopped'}</b>, "
            f"interval {sampler.interval:g}s, ticks {sampler.ticks}, "
            f"{len(sampler.store)} series retained. See "
            '<a href="/api/alerts">/api/alerts</a>, '
            '<a href="/api/timeseries?metric=http_requests_total">/api/timeseries</a>, '
            '<a href="/debug">/debug</a>.</p>',
        ]
        if firing:
            body.append('<h2 style="color:#c0392b">Firing alerts</h2><ul>')
            for alert in firing:
                body.append(
                    f'<li style="color:#c0392b"><b>'
                    f"{_html_escape(str(alert['severity']))}</b> "
                    f"{_html_escape(str(alert['message']))}</li>"
                )
            body.append("</ul>")
        else:
            body.append("<p>No firing alerts.</p>")
        body.append('<img src="/debug/dashboard.svg" alt="sparkline grid"/>')
        if evaluator is not None:
            body.append(
                "<h2>Service level objectives</h2>"
                "<table border='1' cellpadding='4'>"
                "<tr><th>slo</th><th>objective</th><th>window</th>"
                "<th>burn rate (long / short)</th><th>state</th></tr>"
            )
            for entry in evaluator.snapshot(sampler.store, time.time()):
                for rule in entry["windows"]:
                    style = ' style="color:#c0392b"' if rule["firing"] else ""
                    body.append(
                        f"<tr{style}><td>{_html_escape(entry['name'])}</td>"
                        f"<td>{entry['objective']:.1%}</td>"
                        f"<td>{rule['severity']} "
                        f"({rule['long_seconds']:g}s/{rule['short_seconds']:g}s "
                        f"@ {rule['factor']:g}x)</td>"
                        f"<td>{_fmt_burn(rule['burn_rate_long'])} / "
                        f"{_fmt_burn(rule['burn_rate_short'])}</td>"
                        f"<td>{'FIRING' if rule['firing'] else 'ok'}</td></tr>"
                    )
            body.append("</table>")
        body.append("</body></html>")
        return HtmlResponse("".join(body))

    def _explained(request: Request):
        """Shared ``/explore`` helper: run the query with provenance."""
        text = request.params.get("q", "")
        query = engine.parse(text)
        return engine.search_explained(query)

    def _waterfall_steps(provenance) -> list:
        """Waterfall steps with each stage's wall time merged in."""
        seconds_of = {stage.name: stage.seconds for stage in provenance.stages}
        steps = []
        for step in provenance.waterfall:
            merged = dict(step)
            merged["seconds"] = seconds_of.get(step["constraint"])
            steps.append(merged)
        return steps

    @router.get("/explore")
    def explore(request: Request) -> Response:
        """The slow-query explorer: provenance rendered for humans.

        For a query, shows the constraint waterfall (per-constraint
        strategy, wall time, selectivity, and the candidates each
        intersection step kept) and, for the top results, the PageRank
        score decomposition — which in-links carry the score, over which
        link structure, plus teleport/dangling mass. The SVGs are served
        by the ``/explore/*.svg`` siblings so they can also be embedded
        elsewhere.
        """
        text = request.params.get("q", "")
        body = [
            "<!doctype html><html><head><title>Query explorer</title></head><body>",
            "<h1>Query provenance explorer</h1>",
            '<form method="get" action="/explore">',
            f'<input name="q" size="70" value="{_html_escape(text)}" '
            'placeholder="keyword=wind kind=sensor sort=pagerank"/>',
            '<button type="submit">Explain</button></form>',
        ]
        if text.strip():
            try:
                results, provenance = _explained(request)
            except ReproError as exc:
                body.append(f"<p><strong>Error:</strong> {_html_escape(str(exc))}</p>")
            else:
                quoted = quote(text, safe="")
                body.append(
                    f"<p>{len(results)} of {results.total_candidates} candidates in "
                    f"{provenance.seconds * 1000:.2f} ms "
                    f"(trace <code>{_html_escape(str(provenance.trace_id))}</code>)</p>"
                )
                body.append("<h2>Constraint waterfall</h2>")
                body.append(
                    f'<img src="/explore/waterfall.svg?q={quoted}" '
                    'alt="constraint waterfall"/>'
                )
                body.append(
                    "<table border='1' cellpadding='4'>"
                    "<tr><th>constraint</th><th>strategy</th><th>matched</th>"
                    "<th>selectivity</th><th>ms</th></tr>"
                )
                for stage in provenance.stages:
                    body.append(
                        f"<tr><td>{_html_escape(stage.name)}</td>"
                        f"<td>{stage.strategy}</td><td>{stage.matched}</td>"
                        f"<td>{stage.selectivity:.1%}</td>"
                        f"<td>{stage.seconds * 1000:.2f}</td></tr>"
                    )
                body.append("</table>")
                if results:
                    top_title = results.results[0].title
                    body.append("<h2>Score provenance (top result)</h2>")
                    body.append(
                        f'<img src="/explore/contributions.svg?q={quoted}" '
                        'alt="score contributions"/>'
                    )
                    explanation = engine.ranker.explain(top_title)
                    body.append(
                        f"<p><b>{_html_escape(top_title)}</b>: score "
                        f"{explanation['score']:.6f} = teleport "
                        f"{explanation['teleport']:.6f} + dangling "
                        f"{explanation['dangling']:.6f} + "
                        f"{explanation['in_links']} in-link contributions</p>"
                    )
        body.append("</body></html>")
        return HtmlResponse("".join(body))

    @router.get("/explore/waterfall.svg")
    def explore_waterfall(request: Request) -> Response:
        _, provenance = _explained(request)
        chart = WaterfallChart(
            _waterfall_steps(provenance),
            title=f"Constraint waterfall: {provenance.query}",
        )
        return SvgResponse(chart.to_svg())

    @router.get("/explore/contributions.svg")
    def explore_contributions(request: Request) -> Response:
        """Bar chart of one page's score decomposition.

        ``title=`` picks the page (default: the query's top result);
        bars are the top-k in-link contributions (labelled with their
        source page and link structure) plus the teleport, dangling and
        remainder mass — the parts sum to the page's PageRank score.
        """
        title = request.params.get("title")
        if title is None:
            results, _ = _explained(request)
            if not results:
                return JsonResponse(
                    {"error": "query returned no results to explain"},
                    status="404 Not Found",
                )
            title = results.results[0].title
        top_k = int(request.params.get("top_k", "8"))
        explanation = engine.ranker.explain(title, top_k=top_k)
        data = [
            (f"{entry['source']} [{entry['via']}]", entry["value"])
            for entry in explanation["contributions"]
        ]
        data.append(("(remainder)", explanation["remainder"]))
        data.append(("(dangling)", explanation["dangling"]))
        data.append(("(teleport)", explanation["teleport"]))
        chart = BarChart(
            data, title=f"Score provenance: {title} ({explanation['score']:.6f})"
        )
        return SvgResponse(chart.to_svg())

    @router.get("/healthz")
    def healthz(request: Request) -> Response:
        """Component health probes for load balancers and operators.

        Each probe reports ``ok``/``degraded``/``error``; a stale ranker
        (SMR moved on since the last refresh) is *degraded* because the
        next scoring call self-heals it, while an unreachable store is an
        *error* and flips the whole response to 503.
        """
        checks: Dict[str, Dict[str, Any]] = {}

        def probe(name, fn):
            try:
                checks[name] = fn()
            except Exception as exc:  # noqa: BLE001 — health must not raise
                checks[name] = {"status": "error", "error": str(exc)}

        def smr_probe() -> Dict[str, Any]:
            return {
                "status": "ok",
                "pages": engine.smr.page_count,
                "generation": engine.smr.mutation_count,
            }

        def relational_probe() -> Dict[str, Any]:
            tables = engine.smr.db.table_names
            if not tables:
                return {"status": "error", "error": "no relational tables"}
            # A real (trivial) query proves the SQL engine end to end.
            engine.smr.sql(f"SELECT title FROM {tables[0]} LIMIT 1")
            return {"status": "ok", "tables": len(tables)}

        def rdf_probe() -> Dict[str, Any]:
            return {"status": "ok", "triples": len(engine.smr.rdf_graph())}

        def ranker_probe() -> Dict[str, Any]:
            freshness = engine.ranker.freshness()
            freshness["status"] = "ok" if freshness["fresh"] else "degraded"
            return freshness

        def cache_probe() -> Dict[str, Any]:
            info = engine.cache_info()
            info["status"] = "ok" if info.get("enabled") else "degraded"
            return info

        def indexes_probe() -> Dict[str, Any]:
            info = engine.spatial_index_info()
            built = info.get("generation")
            lagging = (
                info.get("enabled")
                and built is not None
                and built != info.get("current_generation")
            )
            # A lagging index is *degraded*, not an error: the next bbox
            # probe rebuilds it (the generation stamp self-heals), but an
            # operator watching /healthz sees that queries will pay it.
            info["status"] = "degraded" if lagging else "ok"
            return info

        def slo_probe() -> Dict[str, Any]:
            evaluator = sampler.evaluator
            if evaluator is None or not evaluator.enabled:
                return {"status": "ok", "enabled": False}
            firing = evaluator.firing()
            fast = [a["slo"] for a in firing if a["severity"] == "fast"]
            return {
                # A firing fast-burn alert means the error budget is
                # draining at page-now speed: the service is degraded
                # even when every component probe below still passes.
                "status": "degraded" if fast else "ok",
                "enabled": True,
                "slos": len(evaluator.slos),
                "firing": len(firing),
                "fast_burn": fast,
                "sampler_running": sampler.running,
            }

        def shards_probe() -> Dict[str, Any]:
            stats = engine.smr.shard_stats()
            staleness: Dict[int, Dict[str, Any]] = {}
            shard_staleness = getattr(engine.ranker, "shard_staleness", None)
            if callable(shard_staleness):
                staleness = {s["shard"]: s for s in shard_staleness()}
            shards = []
            for entry in stats:
                lag = staleness.get(entry["shard"])
                shards.append(
                    {
                        "shard": entry["shard"],
                        "pages": entry["pages"],
                        "generation": entry["mutations"],
                        "ranking_lag": lag["lag"] if lag else None,
                    }
                )
            # Staleness is self-healing (the next scoring call refreshes),
            # so a lagging shard reads as lag > 0 here, never as an error.
            return {"status": "ok", "count": len(shards), "shards": shards}

        probe("smr", smr_probe)
        probe("relational", relational_probe)
        probe("rdf", rdf_probe)
        probe("ranker", ranker_probe)
        probe("cache", cache_probe)
        probe("indexes", indexes_probe)
        probe("slo", slo_probe)
        if callable(getattr(engine.smr, "shard_stats", None)):
            probe("shards", shards_probe)
        statuses = {check["status"] for check in checks.values()}
        overall = (
            "error" if "error" in statuses
            else "degraded" if "degraded" in statuses
            else "ok"
        )
        status_line = "503 Service Unavailable" if overall == "error" else "200 OK"
        return JsonResponse({"status": overall, "checks": checks}, status=status_line)

    @router.get("/api/suggest")
    def suggest_endpoint(request: Request) -> Response:
        keyword = request.params.get("q", "")
        return JsonResponse({"suggestions": engine.did_you_mean(keyword)})

    @router.get("/api/queries/popular")
    def popular_queries(request: Request) -> Response:
        k = int(request.params.get("k", "10"))
        return JsonResponse(
            {
                "popular": [
                    {"query": q, "count": c} for q, c in engine.query_log.popular(k)
                ],
                "zero_results": engine.query_log.zero_result_queries(k),
            }
        )

    @router.get("/api/pagerank/top")
    def pagerank_top(request: Request) -> Response:
        k = int(request.params.get("k", "10"))
        return JsonResponse(
            {"pages": [{"title": t, "score": s} for t, s in engine.ranker.top(k)]}
        )

    @router.get("/api/tags/cloud")
    def tag_cloud(request: Request) -> Response:
        top = request.params.get("top")
        cloud = tagging.cloud(top=int(top) if top else None)
        return JsonResponse(
            {
                "tags": [
                    {
                        "tag": e.tag,
                        "count": e.count,
                        "size": e.size,
                        "cliques": e.clique_ids,
                    }
                    for e in cloud.entries
                ],
                "clique_count": len(cloud.cliques),
            }
        )

    @router.get("/api/tags/cloud.svg")
    def tag_cloud_svg(request: Request) -> Response:
        top = request.params.get("top")
        cloud = tagging.cloud(top=int(top) if top else None)
        return SvgResponse(render_tag_cloud_svg(cloud))

    @router.post("/api/tags")
    def create_tag(request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict) or "page" not in payload or "tag" not in payload:
            return JsonResponse(
                {"error": "body must be {\"page\": ..., \"tag\": ...}"},
                status="400 Bad Request",
            )
        created = tagging.create_tag(str(payload["page"]), str(payload["tag"]))
        return JsonResponse({"created": created}, status="201 Created" if created else "200 OK")

    @router.get("/api/viz/map.svg")
    def viz_map(request: Request) -> Response:
        results = _search(request)
        markers = [
            MapMarker(r.location, r.title, r.match_degree) for r in results.located()
        ]
        return SvgResponse(MapRenderer().render(markers, title=results.query_description))

    @router.get("/api/viz/facets.svg")
    def viz_facets(request: Request) -> Response:
        results = _search(request)
        prop = request.params.get("prop", "")
        chart = request.params.get("chart", "bar")
        pairs = engine.facets(results, prop)
        if chart == "pie":
            return SvgResponse(PieChart(pairs, title=f"{prop} facets").to_svg())
        return SvgResponse(BarChart(pairs, title=f"{prop} facets").to_svg())

    def application(environ, start_response):
        request = Request(environ)
        try:
            response = router.dispatch(request)
        except ReproError as exc:
            response = JsonResponse(
                {"error": str(exc), "type": type(exc).__name__}, status="400 Bad Request"
            )
        except (ValueError, KeyError) as exc:
            response = JsonResponse({"error": str(exc)}, status="400 Bad Request")
        except Exception as exc:  # noqa: BLE001 — uniform 500 envelope
            # Without this, an unexpected bug would propagate to the WSGI
            # server's own 500 page — which bypasses the middleware's
            # X-Trace-Id stamping. Every response, crashes included, must
            # carry the trace id; it is the handle users quote back.
            obs.get_event_log().error(
                "http.unhandled_error",
                path=request.path,
                error=f"{type(exc).__name__}: {exc}",
            )
            response = JsonResponse(
                {
                    "error": "internal server error",
                    "type": type(exc).__name__,
                    "trace_id": obs.current_trace_id(),
                },
                status="500 Internal Server Error",
            )
        start_response(response.status, response.headers)
        return [response.body]

    app = MetricsMiddleware(application, router)
    app.sampler = sampler
    owns_thread = bool(start_sampler) and sampler.start()

    def close() -> None:
        """Stop the sampler thread iff this app started it (idempotent)."""
        nonlocal owns_thread
        if owns_thread:
            sampler.stop()
            owns_thread = False

    app.close = close
    return app


class MetricsMiddleware:
    """WSGI middleware recording per-endpoint request counts and latency.

    Endpoints are labelled by the router's route *template* (e.g.
    ``/api/page/{title}``), never the raw path, so label cardinality is
    bounded by the route table. Each request also opens an ``http.request``
    span, making the engine/tagging spans it triggers children of the
    HTTP request in ``/debug/trace``.

    The middleware is where request-scoped **trace correlation** starts:
    it mints one trace id per request, binds it for the request's thread
    (so the root span, every :class:`~repro.obs.log.EventLog` record and
    every convergence run the request triggers carry it), and stamps it
    onto the response as ``X-Trace-Id`` — on *every* response, error
    responses and the observability-disabled fast path included, because
    the header is the handle users quote back when reporting a problem.
    """

    def __init__(self, app, router: Router):
        self.app = app
        self.router = router

    def __call__(self, environ, start_response):
        registry = obs.get_registry()
        tracer = obs.get_tracer()
        event_log = obs.get_event_log()
        trace_id = obs.mint_trace_id()
        captured: Dict[str, str] = {"status": "500"}

        def stamping_start_response(status, headers, exc_info=None):
            captured["status"] = status.split(" ", 1)[0]
            headers = list(headers) + [("X-Trace-Id", trace_id)]
            if exc_info:
                return start_response(status, headers, exc_info)
            return start_response(status, headers)

        if not registry.enabled and not tracer.enabled and not event_log.enabled:
            # Everything is off: skip spans/metrics/logs entirely (the
            # <1 %-disabled overhead gate) but still stamp the header.
            return self.app(environ, stamping_start_response)
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        endpoint = self.router.endpoint_of(method, path)
        start = time.perf_counter()
        obs.bind_trace_id(trace_id)
        try:
            event_log.debug(
                "http.request.start", method=method, path=path, endpoint=endpoint
            )
            with tracer.span("http.request", method=method, endpoint=endpoint) as span:
                body = self.app(environ, stamping_start_response)
                span.set_attribute("status", captured["status"])
            elapsed = time.perf_counter() - start
            event_log.info(
                "http.request.end",
                method=method,
                endpoint=endpoint,
                status=captured["status"],
                seconds=elapsed,
            )
            # Record latency while the trace id is still bound: the
            # histogram's exemplar reads the *current* trace id, and an
            # exemplar without one cannot link a percentile to its trace.
            if registry.enabled:
                registry.counter(
                    "http_requests_total",
                    "HTTP requests served per endpoint, method and status.",
                    labels=("endpoint", "method", "status"),
                ).labels(endpoint, method, captured["status"]).inc()
                registry.histogram(
                    "http_request_seconds",
                    "HTTP request latency per endpoint.",
                    labels=("endpoint",),
                ).labels(endpoint).observe(elapsed)
        finally:
            obs.unbind_trace_id()
        return body


def serve(app, host: str = "127.0.0.1", port: int = 8000) -> None:
    """Serve the app with wsgiref (blocking; demo use only).

    Turns on histogram exemplar collection for the served process, so
    ``/metrics?format=openmetrics`` bucket lines and the ``/api/stats``
    percentiles link to concrete trace ids out of the box (the library
    default stays off for embedders that never scrape exemplars). Also
    starts the app's metrics sampler so ``/api/timeseries`` and
    ``/debug/dashboard`` have history from the first request on.
    """
    obs.get_registry().enable_exemplars()
    sampler = getattr(app, "sampler", None)
    if sampler is not None:
        sampler.start()
    with make_server(host, port, app) as server:
        print(f"serving on http://{host}:{port}")
        server.serve_forever()
