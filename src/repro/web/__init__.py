"""A small HTTP/JSON API mirroring the demo web interface.

Stdlib-only: a WSGI application (:func:`repro.web.app.create_app`) plus a
tiny router. Being WSGI, the app is unit-testable by calling it with an
environ dict — no sockets — and servable with ``wsgiref`` for the live
demo (``examples/web_demo.py``).
"""

from repro.web.http import JsonResponse, Router, SvgResponse, TextResponse
from repro.web.app import create_app, serve

__all__ = ["Router", "JsonResponse", "SvgResponse", "TextResponse", "create_app", "serve"]
