"""A minimal WSGI router and response helpers."""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, List, Tuple
from urllib.parse import parse_qs

Handler = Callable[..., "Response"]


class Response:
    """Base response: status, headers, body bytes."""

    def __init__(self, body: bytes, status: str, content_type: str):
        self.body = body
        self.status = status
        self.headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
        ]


class JsonResponse(Response):
    def __init__(self, payload: Any, status: str = "200 OK"):
        body = json.dumps(payload, indent=2, sort_keys=True, default=str).encode("utf-8")
        super().__init__(body, status, "application/json; charset=utf-8")


class TextResponse(Response):
    def __init__(self, text: str, status: str = "200 OK", content_type: str = "text/plain"):
        super().__init__(text.encode("utf-8"), status, f"{content_type}; charset=utf-8")


class SvgResponse(Response):
    def __init__(self, svg: str, status: str = "200 OK"):
        super().__init__(svg.encode("utf-8"), status, "image/svg+xml")


class HtmlResponse(Response):
    def __init__(self, html: str, status: str = "200 OK"):
        super().__init__(html.encode("utf-8"), status, "text/html; charset=utf-8")


class Request:
    """Parsed WSGI request: method, path, query params, JSON body."""

    def __init__(self, environ: Dict[str, Any]):
        self.method = environ.get("REQUEST_METHOD", "GET").upper()
        self.path = environ.get("PATH_INFO", "/")
        query = parse_qs(environ.get("QUERY_STRING", ""))
        self.params: Dict[str, str] = {key: values[0] for key, values in query.items()}
        self._environ = environ

    def header(self, name: str, default: str = "") -> str:
        """A request header by its HTTP name (case-insensitive).

        ``header("Accept")`` reads ``HTTP_ACCEPT`` from the WSGI environ;
        ``Content-Type`` and ``Content-Length`` use their dedicated
        environ keys per PEP 3333.
        """
        key = name.upper().replace("-", "_")
        if key in ("CONTENT_TYPE", "CONTENT_LENGTH"):
            return self._environ.get(key, default)
        return self._environ.get(f"HTTP_{key}", default)

    def json(self) -> Any:
        """The parsed JSON request body, or None when absent/invalid."""
        try:
            length = int(self._environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            return None
        raw = self._environ["wsgi.input"].read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None


class Router:
    """Maps ``METHOD /path/{param}`` patterns to handlers."""

    def __init__(self):
        self._routes: List[Tuple[str, "re.Pattern[str]", Handler, str]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``METHOD pattern``."""
        regex = re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern)
        self._routes.append((method.upper(), re.compile(f"^{regex}$"), handler, pattern))

    def endpoint_of(self, method: str, path: str) -> str:
        """The route pattern ``path`` would dispatch to, for metric labels.

        Returns the template string (e.g. ``/api/page/{title}``) rather
        than the raw path so per-endpoint metrics stay low-cardinality.
        Unrouted paths collapse into the single label ``(unmatched)``.
        """
        method = method.upper()
        for route_method, regex, _, pattern in self._routes:
            if route_method == method and regex.match(path):
                return pattern
        return "(unmatched)"

    def get(self, pattern: str):
        """Decorator registering a GET handler for ``pattern``."""
        def decorator(handler: Handler) -> Handler:
            self.add("GET", pattern, handler)
            return handler

        return decorator

    def post(self, pattern: str):
        """Decorator registering a POST handler for ``pattern``."""
        def decorator(handler: Handler) -> Handler:
            self.add("POST", pattern, handler)
            return handler

        return decorator

    def dispatch(self, request: Request) -> Response:
        """Route ``request`` to its handler (404/405 JSON otherwise)."""
        path_matched = False
        for method, regex, handler, _ in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method != request.method:
                continue
            return handler(request, **match.groupdict())
        if path_matched:
            return JsonResponse({"error": "method not allowed"}, status="405 Method Not Allowed")
        return JsonResponse({"error": f"no route for {request.path}"}, status="404 Not Found")
