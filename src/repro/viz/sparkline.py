"""Sparkline grids — the `/debug/dashboard` operator page's chart form.

Where Fig. 2 of the paper renders result maps and facet charts for end
users, the operations dashboard needs the operator equivalent: many
small time series at once, each readable at a glance (trend + latest
value), laid out as a grid. A :class:`SparklinePanel` is one titled
mini-chart over ``(timestamp, value)`` points with the latest value,
min/max hints, an optional dashed threshold line and an optional red
"alerting" state; :class:`SparklineGrid` arranges panels into rows and
renders the whole board as a single SVG through the shared
:class:`~repro.viz.svg.SvgCanvas` — no external charting dependency,
consistent with every other ``repro.viz`` artifact.

Panels degrade gracefully: an empty series renders its frame with a
"no data" note instead of failing, because a freshly started sampler
has nothing yet and the dashboard must still load.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import VizError
from repro.viz.svg import SvgCanvas

_ACCENT = "#2c7fb8"
_ACCENT_FILL = "#d7e9f5"
_ALERT = "#c0392b"
_FRAME = "#bbbbbb"
_MUTED = "#777777"


def _format_value(value: float, unit: str = "") -> str:
    """Compact human formatting: 1234567 -> '1.23M', 0.00123 -> '1.23m'."""
    magnitude = abs(value)
    for bound, suffix, scale in (
        (1e9, "G", 1e9),
        (1e6, "M", 1e6),
        (1e3, "k", 1e3),
    ):
        if magnitude >= bound:
            return f"{value / scale:.2f}{suffix}{unit}"
    if magnitude >= 1 or magnitude == 0:
        return f"{value:.2f}".rstrip("0").rstrip(".") + unit
    if magnitude >= 1e-3:
        return f"{value * 1e3:.2f}m{unit}"
    return f"{value * 1e6:.1f}µ{unit}"


class SparklinePanel:
    """One titled mini time series for the dashboard grid."""

    def __init__(
        self,
        title: str,
        points: Sequence[Tuple[float, float]],
        unit: str = "",
        threshold: Optional[float] = None,
        alerting: bool = False,
    ):
        self.title = title
        self.points = [
            (float(t), float(v)) for t, v in points if v is not None
        ]
        self.unit = unit
        self.threshold = threshold
        self.alerting = alerting

    @property
    def latest(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def render(self, canvas: SvgCanvas, x: float, y: float, w: float, h: float) -> None:
        """Draw this panel into the given cell rectangle."""
        stroke = _ALERT if self.alerting else _FRAME
        canvas.rect(x, y, w, h, fill="#ffffff", stroke=stroke, rx=3)
        canvas.text(x + 8, y + 16, self.title, size=11, weight="bold",
                    fill=_ALERT if self.alerting else "#333333")
        if not self.points:
            canvas.text(x + w / 2, y + h / 2 + 8, "no data", size=10,
                        fill=_MUTED, anchor="middle")
            return
        value_text = _format_value(self.points[-1][1], self.unit)
        canvas.text(x + w - 8, y + 16, value_text, size=11, anchor="end",
                    fill=_ALERT if self.alerting else _ACCENT, weight="bold")

        plot_x, plot_y = x + 8, y + 24
        plot_w, plot_h = w - 16, h - 44
        ts = [t for t, _ in self.points]
        vs = [v for _, v in self.points]
        t_min, t_max = min(ts), max(ts)
        v_min, v_max = min(vs), max(vs)
        if self.threshold is not None:
            v_min = min(v_min, self.threshold)
            v_max = max(v_max, self.threshold)
        if t_max == t_min:
            t_max = t_min + 1.0
        if v_max == v_min:
            v_max = v_min + (abs(v_min) or 1.0) * 0.1
            v_min = v_min - (abs(v_min) or 1.0) * 0.1

        def px(t: float) -> float:
            return plot_x + (t - t_min) / (t_max - t_min) * plot_w

        def py(v: float) -> float:
            return plot_y + (v_max - v) / (v_max - v_min) * plot_h

        if len(self.points) > 1:
            line = " L ".join(f"{px(t):.2f} {py(v):.2f}" for t, v in self.points)
            # Filled area under the line, then the line itself on top.
            area = (
                f"M {px(ts[0]):.2f} {py(v_min):.2f} L {line} "
                f"L {px(ts[-1]):.2f} {py(v_min):.2f} Z"
            )
            canvas.path(area, fill=_ACCENT_FILL)
            canvas.path(f"M {line}", stroke=_ALERT if self.alerting else _ACCENT,
                        width=1.4)
        last_t, last_v = self.points[-1]
        canvas.circle(px(last_t), py(last_v), 2.2,
                      fill=_ALERT if self.alerting else _ACCENT)
        if self.threshold is not None and v_min <= self.threshold <= v_max:
            canvas.line(plot_x, py(self.threshold), plot_x + plot_w,
                        py(self.threshold), stroke=_ALERT, width=0.8, dash="4,3")
        canvas.text(x + 8, y + h - 6, f"min {_format_value(min(vs), self.unit)}",
                    size=9, fill=_MUTED)
        canvas.text(x + w - 8, y + h - 6, f"max {_format_value(max(vs), self.unit)}",
                    size=9, fill=_MUTED, anchor="end")


class SparklineGrid:
    """A titled grid of :class:`SparklinePanel` cells rendered as one SVG."""

    def __init__(
        self,
        panels: Sequence[SparklinePanel],
        columns: int = 3,
        title: str = "",
        subtitle: str = "",
        cell_width: int = 250,
        cell_height: int = 110,
        gap: int = 12,
    ):
        if columns <= 0:
            raise VizError(f"grid needs a positive column count, got {columns}")
        self.panels = list(panels)
        self.columns = columns
        self.title = title
        self.subtitle = subtitle
        self.cell_width = cell_width
        self.cell_height = cell_height
        self.gap = gap

    def to_svg(self) -> str:
        """Render the grid as an SVG document string."""
        columns = min(self.columns, max(1, len(self.panels)))
        rows = max(1, -(-len(self.panels) // columns))
        header = 48 if (self.title or self.subtitle) else 12
        width = columns * self.cell_width + (columns + 1) * self.gap
        height = header + rows * self.cell_height + (rows + 1) * self.gap
        canvas = SvgCanvas(width, height, background="#fafafa")
        if self.title:
            canvas.text(self.gap, 24, self.title, size=16, weight="bold")
        if self.subtitle:
            canvas.text(self.gap, 42, self.subtitle, size=10, fill=_MUTED)
        for index, panel in enumerate(self.panels):
            row, col = divmod(index, columns)
            x = self.gap + col * (self.cell_width + self.gap)
            y = header + self.gap + row * (self.cell_height + self.gap)
            panel.render(canvas, x, y, self.cell_width, self.cell_height)
        return canvas.to_string()
