"""Bar diagrams over facet distributions (Fig. 2, "real-time bar ... diagrams")."""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.errors import VizError
from repro.viz.color import categorical_color
from repro.viz.svg import SvgCanvas

_MARGIN = 40
_LABEL_SPACE = 110


class BarChart:
    """A horizontal bar chart of ``(label, value)`` pairs.

    Values may be negative (real-time sensor means dip below zero); the
    bars then extend left of the zero baseline.
    """

    def __init__(self, data: Sequence[Tuple[Any, float]], title: str = ""):
        if not data:
            raise VizError("bar chart needs at least one data point")
        for _, value in data:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise VizError(f"bar values must be numbers, got {value!r}")
        self.data = [
            (("(none)" if label is None else str(label)), float(value))
            for label, value in data
        ]
        self.title = title

    def to_svg(self, width: int = 640, height: int = 0) -> str:
        """Render the chart as an SVG document string."""
        bar_height = 22
        gap = 8
        height = height or (_MARGIN * 2 + len(self.data) * (bar_height + gap))
        canvas = SvgCanvas(width, height, background="#ffffff")
        if self.title:
            canvas.text(width / 2, 22, self.title, size=15, anchor="middle", weight="bold")
        plot_width = width - _MARGIN - _LABEL_SPACE - 60
        low = min(0.0, min(value for _, value in self.data))
        high = max(0.0, max(value for _, value in self.data))
        span = (high - low) or 1.0
        baseline_x = _LABEL_SPACE + (-low) / span * plot_width
        y = _MARGIN
        for i, (label, value) in enumerate(self.data):
            length = abs(value) / span * plot_width
            bar_x = baseline_x if value >= 0 else baseline_x - length
            canvas.text(
                _LABEL_SPACE - 8, y + bar_height * 0.7, label, size=12, anchor="end"
            )
            canvas.rect(
                bar_x,
                y,
                max(length, 0.5),
                bar_height,
                fill=categorical_color(i),
                title=f"{label}: {value:g}",
            )
            value_x = bar_x + length + 6 if value >= 0 else bar_x - 6
            anchor = "start" if value >= 0 else "end"
            canvas.text(value_x, y + bar_height * 0.7, f"{value:g}", size=11, anchor=anchor)
            y += bar_height + gap
        # Zero baseline axis.
        canvas.line(baseline_x, _MARGIN - 4, baseline_x, y - gap + 4, stroke="#333333")
        return canvas.to_string()
