"""Visualization toolkit — every output of Fig. 2, self-contained.

The production demo leaned on Google Maps/Charts, GraphViz and a
HyperGraph applet; this package regenerates the same artifact types as
standalone SVG/HTML/DOT text:

- :mod:`repro.viz.table` — plain tabular formats (text + HTML);
- :mod:`repro.viz.bar` / :mod:`repro.viz.pie` — "real-time bar and pie
  diagrams" over facet distributions;
- :mod:`repro.viz.maprender` — result maps with clustered markers and
  match-degree coloring;
- :mod:`repro.viz.graphviz` — semantic-relation graphs (DOT export plus
  a force-directed SVG renderer from :mod:`repro.viz.layout`);
- :mod:`repro.viz.hypergraph` — the browsable link-structure hypergraph;
- :mod:`repro.viz.tagcloud` — tag clouds with clique coloring;
- :mod:`repro.viz.waterfall` — constraint-narrowing waterfalls for the
  query-provenance explorer (``/explore``);
- :mod:`repro.viz.sparkline` — sparkline grids for the live operations
  dashboard (``/debug/dashboard``);
- :mod:`repro.viz.svg` / :mod:`repro.viz.color` — the shared substrate.
"""

from repro.viz.svg import SvgCanvas
from repro.viz.color import categorical_color, match_degree_color
from repro.viz.table import render_html_table, render_text_table
from repro.viz.bar import BarChart
from repro.viz.line import LineChart
from repro.viz.pie import PieChart
from repro.viz.maprender import MapMarker, MapRenderer
from repro.viz.layout import circular_layout, force_directed_layout
from repro.viz.graphviz import GraphRenderer, to_dot
from repro.viz.hypergraph import Hypergraph, HypergraphRenderer
from repro.viz.tagcloud import render_tag_cloud_html, render_tag_cloud_svg
from repro.viz.waterfall import WaterfallChart
from repro.viz.sparkline import SparklineGrid, SparklinePanel

__all__ = [
    "SvgCanvas",
    "categorical_color",
    "match_degree_color",
    "render_text_table",
    "render_html_table",
    "BarChart",
    "LineChart",
    "PieChart",
    "MapMarker",
    "MapRenderer",
    "circular_layout",
    "force_directed_layout",
    "GraphRenderer",
    "to_dot",
    "Hypergraph",
    "HypergraphRenderer",
    "render_tag_cloud_html",
    "render_tag_cloud_svg",
    "WaterfallChart",
    "SparklineGrid",
    "SparklinePanel",
]
