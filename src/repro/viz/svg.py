"""A minimal SVG document builder.

Every renderer in :mod:`repro.viz` draws through this canvas, so output
escaping and document structure live in exactly one place.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import VizError


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _fmt(value: float) -> str:
    # Compact numeric formatting keeps documents small and diffs stable.
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SvgCanvas:
    """Accumulates SVG elements; :meth:`to_string` renders the document."""

    def __init__(self, width: int, height: int, background: Optional[str] = None):
        if width <= 0 or height <= 0:
            raise VizError(f"canvas must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self._elements: List[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background)

    @staticmethod
    def _attrs(**attrs) -> str:
        rendered = []
        for key, value in attrs.items():
            if value is None:
                continue
            name = key.replace("_", "-")
            rendered.append(f'{name}="{_escape(str(value))}"')
        return " ".join(rendered)

    def _emit(self, tag: str, attr_text: str, title: Optional[str] = None) -> None:
        if title is None:
            self._elements.append(f"<{tag} {attr_text}/>")
        else:
            self._elements.append(
                f"<{tag} {attr_text}><title>{_escape(title)}</title></{tag}>"
            )

    def rect(self, x, y, w, h, fill="none", stroke=None, rx=None, opacity=None, title=None):
        """Add a rectangle (optionally with a tooltip ``title``)."""
        attrs = self._attrs(
            x=_fmt(x), y=_fmt(y), width=_fmt(w), height=_fmt(h),
            fill=fill, stroke=stroke, rx=rx, opacity=opacity,
        )
        self._emit("rect", attrs, title)

    def circle(self, cx, cy, r, fill="none", stroke=None, opacity=None, title=None):
        """Add a circle (optionally with a tooltip ``title``)."""
        attrs = self._attrs(
            cx=_fmt(cx), cy=_fmt(cy), r=_fmt(r), fill=fill, stroke=stroke, opacity=opacity
        )
        self._emit("circle", attrs, title)

    def line(self, x1, y1, x2, y2, stroke="#000000", width=1.0, opacity=None, dash=None):
        """Add a straight line segment."""
        attrs = self._attrs(
            x1=_fmt(x1), y1=_fmt(y1), x2=_fmt(x2), y2=_fmt(y2),
            stroke=stroke, stroke_width=width, opacity=opacity, stroke_dasharray=dash,
        )
        self._emit("line", attrs)

    def text(
        self,
        x,
        y,
        content: str,
        size: int = 12,
        fill: str = "#000000",
        anchor: str = "start",
        weight: Optional[str] = None,
        family: str = "sans-serif",
    ):
        """Add a text element (content is XML-escaped)."""
        attrs = self._attrs(
            x=_fmt(x),
            y=_fmt(y),
            font_size=size,
            fill=fill,
            text_anchor=anchor,
            font_weight=weight,
            font_family=family,
        )
        self._elements.append(f"<text {attrs}>{_escape(content)}</text>")

    def polygon(self, points: Sequence[Tuple[float, float]], fill="none", stroke=None, opacity=None):
        """Add a filled/stroked polygon of >= 3 points."""
        if len(points) < 3:
            raise VizError(f"polygon needs >= 3 points, got {len(points)}")
        rendered = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        attrs = self._attrs(fill=fill, stroke=stroke, opacity=opacity)
        self._elements.append(f'<polygon points="{rendered}" {attrs}/>')

    def path(self, d: str, fill="none", stroke=None, width: float = 1.0, title=None):
        """Add a raw SVG path element."""
        attrs = self._attrs(d=d, fill=fill, stroke=stroke, stroke_width=width)
        self._emit("path", attrs, title)

    @property
    def element_count(self) -> int:
        return len(self._elements)

    def to_string(self) -> str:
        """Serialize the accumulated elements as an SVG document."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">'
        )
        return "\n".join([header, *self._elements, "</svg>"])
