"""Line charts — used for the Fig. 3 convergence/time curves.

Supports multiple named series, linear or log-10 y scale (residual
histories span many orders of magnitude), axis ticks and a legend.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import VizError
from repro.viz.color import categorical_color
from repro.viz.svg import SvgCanvas

_MARGIN_LEFT = 70
_MARGIN_RIGHT = 160
_MARGIN_TOP = 40
_MARGIN_BOTTOM = 45


class LineChart:
    """Multi-series line chart over ``(x, y)`` points."""

    def __init__(
        self,
        title: str = "",
        x_label: str = "",
        y_label: str = "",
        log_y: bool = False,
    ):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.log_y = log_y
        self._series: Dict[str, List[Tuple[float, float]]] = {}

    def add_series(self, name: str, points: Sequence[Tuple[float, float]]) -> "LineChart":
        """Add one named series; points are sorted by x."""
        cleaned = [(float(x), float(y)) for x, y in points]
        if not cleaned:
            raise VizError(f"series {name!r} needs at least one point")
        if self.log_y and any(y <= 0 for _, y in cleaned):
            raise VizError(f"series {name!r} has non-positive values; log scale impossible")
        self._series[name] = sorted(cleaned)
        return self

    def _y_transform(self, y: float) -> float:
        return math.log10(y) if self.log_y else y

    def to_svg(self, width: int = 720, height: int = 420) -> str:
        """Render the chart as an SVG document string."""
        if not self._series:
            raise VizError("line chart needs at least one series")
        canvas = SvgCanvas(width, height, background="#ffffff")
        plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
        plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM
        xs = [x for pts in self._series.values() for x, _ in pts]
        ys = [self._y_transform(y) for pts in self._series.values() for _, y in pts]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        if x_max == x_min:
            x_max = x_min + 1.0
        if y_max == y_min:
            y_max = y_min + 1.0

        def px(x: float) -> float:
            return _MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w

        def py(y: float) -> float:
            return _MARGIN_TOP + (y_max - self._y_transform(y)) / (y_max - y_min) * plot_h

        # Frame and title.
        canvas.rect(_MARGIN_LEFT, _MARGIN_TOP, plot_w, plot_h, fill="none", stroke="#999999")
        if self.title:
            canvas.text(width / 2, 22, self.title, size=15, anchor="middle", weight="bold")
        # Axis ticks: 5 per axis.
        for i in range(6):
            tick_x = x_min + (x_max - x_min) * i / 5
            canvas.line(px(tick_x), _MARGIN_TOP + plot_h, px(tick_x), _MARGIN_TOP + plot_h + 5, stroke="#666666")
            canvas.text(px(tick_x), _MARGIN_TOP + plot_h + 18, f"{tick_x:g}", size=10, anchor="middle")
            raw_y = y_min + (y_max - y_min) * i / 5
            label = f"1e{raw_y:.1f}" if self.log_y else f"{raw_y:g}"
            y_pixel = _MARGIN_TOP + plot_h - plot_h * i / 5
            canvas.line(_MARGIN_LEFT - 5, y_pixel, _MARGIN_LEFT, y_pixel, stroke="#666666")
            canvas.text(_MARGIN_LEFT - 9, y_pixel + 4, label, size=10, anchor="end")
        if self.x_label:
            canvas.text(_MARGIN_LEFT + plot_w / 2, height - 10, self.x_label, size=11, anchor="middle")
        if self.y_label:
            canvas.text(14, _MARGIN_TOP - 10, self.y_label, size=11)
        # Series.
        for index, (name, points) in enumerate(sorted(self._series.items())):
            color = categorical_color(index)
            if len(points) > 1:
                d = "M " + " L ".join(f"{px(x):.2f} {py(y):.2f}" for x, y in points)
                canvas.path(d, stroke=color, width=1.8)
            for x, y in points:
                canvas.circle(px(x), py(y), 2.4, fill=color, title=f"{name}: ({x:g}, {y:g})")
            # Legend.
            legend_y = _MARGIN_TOP + 14 + index * 18
            canvas.line(width - _MARGIN_RIGHT + 12, legend_y - 4, width - _MARGIN_RIGHT + 34, legend_y - 4, stroke=color, width=2.5)
            canvas.text(width - _MARGIN_RIGHT + 40, legend_y, name, size=11)
        return canvas.to_string()
