"""Color utilities: categorical palettes and the match-degree scale."""

from __future__ import annotations

from typing import Tuple

from repro.errors import VizError

# A color-blind-friendly categorical palette (Okabe-Ito).
PALETTE = [
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#D55E00",
    "#CC79A7",
    "#56B4E9",
    "#F0E442",
    "#999999",
]


def categorical_color(index: int) -> str:
    """The palette color for series/clique ``index`` (cycles)."""
    if index < 0:
        raise VizError(f"color index must be non-negative, got {index}")
    return PALETTE[index % len(PALETTE)]


def _parse_hex(color: str) -> Tuple[int, int, int]:
    text = color.lstrip("#")
    if len(text) != 6:
        raise VizError(f"expected #rrggbb, got {color!r}")
    try:
        return int(text[0:2], 16), int(text[2:4], 16), int(text[4:6], 16)
    except ValueError:
        raise VizError(f"expected #rrggbb, got {color!r}") from None


def _to_hex(rgb: Tuple[int, int, int]) -> str:
    return "#{:02x}{:02x}{:02x}".format(*rgb)


def interpolate(color_a: str, color_b: str, t: float) -> str:
    """Linear interpolation between two hex colors, ``t`` in [0, 1]."""
    if not 0.0 <= t <= 1.0:
        raise VizError(f"interpolation parameter must lie in [0, 1], got {t}")
    a = _parse_hex(color_a)
    b = _parse_hex(color_b)
    mixed = tuple(round(x + (y - x) * t) for x, y in zip(a, b))
    return _to_hex(mixed)


# Match-degree endpoints: weak matches red, perfect matches green —
# "different colors for describing the degree of matching of each result".
_LOW = "#d7301f"
_HIGH = "#1a9850"


def match_degree_color(degree: float) -> str:
    """Map a match degree in [0, 1] to the red-green scale."""
    if not 0.0 <= degree <= 1.0:
        raise VizError(f"match degree must lie in [0, 1], got {degree}")
    return interpolate(_LOW, _HIGH, degree)
