"""Graph layout algorithms (circular and force-directed).

The force-directed layout is Fruchterman–Reingold with simulated
annealing, seeded for determinism — the same family of layouts GraphViz's
spring engines produce for the Fig. 2 relation graphs.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import VizError

Point = Tuple[float, float]


def circular_layout(
    nodes: Sequence[str], width: float, height: float, margin: float = 40.0
) -> Dict[str, Point]:
    """Place ``nodes`` evenly on a circle inscribed in the canvas."""
    if not nodes:
        return {}
    cx, cy = width / 2, height / 2
    radius = max(10.0, min(width, height) / 2 - margin)
    positions = {}
    for i, node in enumerate(nodes):
        theta = 2 * math.pi * i / len(nodes) - math.pi / 2
        positions[node] = (cx + radius * math.cos(theta), cy + radius * math.sin(theta))
    return positions


def force_directed_layout(
    nodes: Sequence[str],
    edges: Iterable[Tuple[str, str]],
    width: float,
    height: float,
    iterations: int = 60,
    seed: int = 0,
) -> Dict[str, Point]:
    """Fruchterman–Reingold layout inside a ``width`` × ``height`` box."""
    nodes = list(nodes)
    if not nodes:
        return {}
    if width <= 0 or height <= 0:
        raise VizError(f"layout area must be positive, got {width}x{height}")
    node_set = set(nodes)
    edge_list = [(a, b) for a, b in edges if a in node_set and b in node_set and a != b]
    rng = random.Random(seed)
    positions: Dict[str, List[float]] = {
        node: [rng.uniform(0.1, 0.9) * width, rng.uniform(0.1, 0.9) * height]
        for node in nodes
    }
    if len(nodes) == 1:
        only = nodes[0]
        return {only: (width / 2, height / 2)}
    area = width * height
    k = math.sqrt(area / len(nodes))  # ideal spring length
    temperature = width / 8
    cooling = temperature / (iterations + 1)
    for _ in range(iterations):
        displacement = {node: [0.0, 0.0] for node in nodes}
        # Repulsion between all pairs.
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                dx = positions[a][0] - positions[b][0]
                dy = positions[a][1] - positions[b][1]
                dist = math.hypot(dx, dy) or 1e-6
                force = k * k / dist
                fx, fy = dx / dist * force, dy / dist * force
                displacement[a][0] += fx
                displacement[a][1] += fy
                displacement[b][0] -= fx
                displacement[b][1] -= fy
        # Attraction along edges.
        for a, b in edge_list:
            dx = positions[a][0] - positions[b][0]
            dy = positions[a][1] - positions[b][1]
            dist = math.hypot(dx, dy) or 1e-6
            force = dist * dist / k
            fx, fy = dx / dist * force, dy / dist * force
            displacement[a][0] -= fx
            displacement[a][1] -= fy
            displacement[b][0] += fx
            displacement[b][1] += fy
        # Apply displacements, capped by the temperature, inside the box.
        for node in nodes:
            dx, dy = displacement[node]
            dist = math.hypot(dx, dy) or 1e-6
            step = min(dist, temperature)
            positions[node][0] += dx / dist * step
            positions[node][1] += dy / dist * step
            positions[node][0] = min(width - 20.0, max(20.0, positions[node][0]))
            positions[node][1] = min(height - 20.0, max(20.0, positions[node][1]))
        temperature = max(0.5, temperature - cooling)
    return {node: (xy[0], xy[1]) for node, xy in positions.items()}
