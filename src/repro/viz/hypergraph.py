"""User-browsable hypergraphs of the page-linking structure.

"User-browsable hypergraphs are dynamically generated based on the
linking structure of the metadata pages ... help them identify popular
(clustered) pages." Each page induces one hyperedge — the page together
with the pages it links to — so a page contained in many hyperedges is
*popular*. :meth:`Hypergraph.neighborhood` supports the browsing
interaction (expand around a focus page);
:class:`HypergraphRenderer` draws the focus view as SVG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.errors import VizError
from repro.viz.color import categorical_color
from repro.viz.layout import circular_layout
from repro.viz.svg import SvgCanvas


@dataclass(frozen=True)
class Hyperedge:
    """One hyperedge: a label plus its member nodes."""

    label: str
    members: FrozenSet[str]


class Hypergraph:
    """Nodes plus labelled hyperedges over them."""

    def __init__(self):
        self._edges: List[Hyperedge] = []
        self._membership: Dict[str, List[int]] = {}

    @classmethod
    def from_link_structure(cls, links: Dict[str, Sequence[str]]) -> "Hypergraph":
        """Build from ``page -> linked pages``: one hyperedge per page."""
        graph = cls()
        for page in sorted(links):
            members = {page, *links[page]}
            graph.add_edge(page, members)
        return graph

    def add_edge(self, label: str, members: Set[str]) -> None:
        """Add a labelled hyperedge over ``members`` (non-empty)."""
        if not members:
            raise VizError(f"hyperedge {label!r} needs at least one member")
        index = len(self._edges)
        self._edges.append(Hyperedge(label, frozenset(members)))
        for node in members:
            self._membership.setdefault(node, []).append(index)

    @property
    def edges(self) -> List[Hyperedge]:
        return list(self._edges)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._membership)

    def degree(self, node: str) -> int:
        """How many hyperedges contain ``node`` (its popularity)."""
        return len(self._membership.get(node, []))

    def popular_pages(self, k: int = 10) -> List[Tuple[str, int]]:
        """The most-contained pages — the clusters users spot visually."""
        ranked = sorted(
            ((node, self.degree(node)) for node in self._membership),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:k]

    def edges_of(self, node: str) -> List[Hyperedge]:
        """The hyperedges containing ``node``."""
        return [self._edges[i] for i in self._membership.get(node, [])]

    def neighborhood(self, node: str) -> Set[str]:
        """Every page sharing a hyperedge with ``node`` (browse step)."""
        neighbors: Set[str] = set()
        for edge in self.edges_of(node):
            neighbors |= edge.members
        neighbors.discard(node)
        return neighbors


class HypergraphRenderer:
    """Draws the focus view: one page, its hyperedges, their members."""

    def __init__(self, width: int = 700, height: int = 700):
        self.width = width
        self.height = height

    def render_focus(self, graph: Hypergraph, focus: str) -> str:
        """Render the hyperedges around ``focus`` as an SVG string."""
        edges = graph.edges_of(focus)
        if not edges:
            raise VizError(f"page {focus!r} belongs to no hyperedge")
        members = sorted({m for edge in edges for m in edge.members if m != focus})
        positions = circular_layout(members, self.width, self.height, margin=80)
        cx, cy = self.width / 2, self.height / 2
        canvas = SvgCanvas(self.width, self.height, background="#ffffff")
        canvas.text(
            self.width / 2, 24, f"Hypergraph around {focus}", size=14, anchor="middle", weight="bold"
        )
        for i, edge in enumerate(edges):
            color = categorical_color(i)
            for member in sorted(edge.members):
                if member == focus:
                    continue
                x, y = positions[member]
                canvas.line(cx, cy, x, y, stroke=color, width=1.5, opacity=0.6)
        for member in members:
            x, y = positions[member]
            popularity = graph.degree(member)
            radius = 6 + min(10, popularity)
            canvas.circle(x, y, radius, fill="#cfe3f5", stroke="#33536e", title=f"{member} (in {popularity} edges)")
            canvas.text(x, y - radius - 4, _short(member), size=9, anchor="middle")
        canvas.circle(cx, cy, 18, fill="#f3c14b", stroke="#333333", title=focus)
        canvas.text(cx, cy - 24, _short(focus), size=11, anchor="middle", weight="bold")
        return canvas.to_string()


def _short(title: str, limit: int = 20) -> str:
    return title if len(title) <= limit else title[: limit - 1] + "…"
