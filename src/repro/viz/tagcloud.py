"""Tag-cloud rendering with clique coloring (Figs. 2 and 5).

Tags are colored by their (first) maximal clique; a tag belonging to
several cliques — the paper's "Apple" — is underlined with every clique
color so its multiple senses show, as in Fig. 5's multi-color encoding.
"""

from __future__ import annotations

from typing import List

from repro.errors import VizError
from repro.tagging.cloud import TagCloud
from repro.viz.color import categorical_color
from repro.viz.svg import SvgCanvas

_BASE_FONT = 11
_FONT_STEP = 3


def _px(size: int) -> int:
    return _BASE_FONT + (size - 1) * _FONT_STEP


def render_tag_cloud_html(cloud: TagCloud) -> str:
    """Render the cloud as an HTML fragment (inline styles only)."""
    parts: List[str] = ['<div class="tag-cloud">']
    for entry in cloud.entries:
        color = categorical_color(entry.clique_ids[0]) if entry.clique_ids else "#333333"
        decoration = "underline" if entry.bridges_cliques else "none"
        safe = entry.tag.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        parts.append(
            f'<span style="font-size:{_px(entry.size)}px;color:{color};'
            f'text-decoration:{decoration};margin:0 6px;" '
            f'title="count {entry.count}, cliques {entry.clique_ids}">{safe}</span>'
        )
    parts.append("</div>")
    return "".join(parts)


def render_tag_cloud_svg(cloud: TagCloud, width: int = 760) -> str:
    """Render the cloud as SVG with simple line wrapping."""
    if width <= 100:
        raise VizError(f"tag cloud needs width > 100, got {width}")
    # First pass: flow layout to know the height.
    placements = []
    x, y = 16.0, 40.0
    line_height = 0.0
    for entry in cloud.entries:
        font = _px(entry.size)
        advance = font * 0.62 * len(entry.tag) + 18
        if x + advance > width - 16 and x > 16.0:
            x = 16.0
            y += line_height + 10
            line_height = 0.0
        placements.append((entry, x, y, font))
        x += advance
        line_height = max(line_height, float(font))
    height = int(y + line_height + 24)
    canvas = SvgCanvas(width, max(height, 80), background="#ffffff")
    for entry, px_x, px_y, font in placements:
        color = categorical_color(entry.clique_ids[0]) if entry.clique_ids else "#333333"
        canvas.text(px_x, px_y, entry.tag, size=font, fill=color)
        if entry.bridges_cliques:
            # One underline stripe per clique the tag belongs to.
            stripe_width = font * 0.62 * len(entry.tag)
            for stripe, clique_id in enumerate(entry.clique_ids):
                canvas.line(
                    px_x,
                    px_y + 3 + stripe * 2.5,
                    px_x + stripe_width,
                    px_y + 3 + stripe * 2.5,
                    stroke=categorical_color(clique_id),
                    width=1.8,
                )
    return canvas.to_string()
