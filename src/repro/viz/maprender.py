"""Map rendering with marker clustering and match-degree coloring.

Fig. 2: "search results that contain positional information can be
presented over maps while using different colors for describing the
degree of matching of each result" — and the demo shows "(clustered)
maps". Markers carry a match degree in [0, 1]; dense marker sets collapse
into count badges via :func:`repro.geo.cluster.cluster_markers`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import VizError
from repro.geo.bbox import BoundingBox
from repro.geo.cluster import cluster_markers
from repro.geo.point import GeoPoint
from repro.geo.projection import WebMercator
from repro.viz.color import match_degree_color
from repro.viz.svg import SvgCanvas


@dataclass(frozen=True)
class MapMarker:
    """One mappable search result."""

    point: GeoPoint
    label: str
    match_degree: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.match_degree <= 1.0:
            raise VizError(f"match degree must lie in [0, 1], got {self.match_degree}")


class MapRenderer:
    """Projects markers onto an SVG canvas, optionally clustered."""

    def __init__(self, width: int = 800, height: int = 600, cluster_grid: int = 10):
        if cluster_grid <= 0:
            raise VizError(f"cluster grid must be positive, got {cluster_grid}")
        self.width = width
        self.height = height
        self.cluster_grid = cluster_grid

    def render(
        self,
        markers: Sequence[MapMarker],
        bbox: Optional[BoundingBox] = None,
        clustered: bool = True,
        title: str = "",
    ) -> str:
        """Render the markers (optionally clustered) as an SVG string."""
        if not markers:
            raise VizError("map rendering needs at least one marker")
        box = bbox or BoundingBox.around([m.point for m in markers], padding_deg=0.05)
        projection = WebMercator(box, self.width, self.height, margin=30)
        canvas = SvgCanvas(self.width, self.height, background="#eef3f7")
        self._graticule(canvas, projection, box)
        if title:
            canvas.text(self.width / 2, 20, title, size=15, anchor="middle", weight="bold")
        if clustered:
            self._render_clustered(canvas, projection, markers, box)
        else:
            for marker in markers:
                if box.contains(marker.point):
                    self._render_single(canvas, projection, marker)
        self._legend(canvas)
        return canvas.to_string()

    # ------------------------------------------------------------------

    def _render_single(self, canvas: SvgCanvas, projection: WebMercator, marker: MapMarker):
        x, y = projection.project(marker.point)
        canvas.circle(
            x,
            y,
            6,
            fill=match_degree_color(marker.match_degree),
            stroke="#333333",
            title=f"{marker.label} (match {marker.match_degree:.0%})",
        )

    def _render_clustered(
        self,
        canvas: SvgCanvas,
        projection: WebMercator,
        markers: Sequence[MapMarker],
        box: BoundingBox,
    ) -> None:
        clusters = cluster_markers(
            [(m.point, m) for m in markers], grid=self.cluster_grid, bbox=box
        )
        for cluster in clusters:
            if cluster.is_singleton:
                self._render_single(canvas, projection, cluster.members[0][1])
                continue
            x, y = projection.project(cluster.centroid)
            mean_degree = sum(m.match_degree for _, m in cluster.members) / cluster.size
            radius = min(22.0, 8.0 + 2.0 * cluster.size**0.5)
            canvas.circle(
                x,
                y,
                radius,
                fill=match_degree_color(mean_degree),
                stroke="#222222",
                opacity=0.85,
                title=f"{cluster.size} results (mean match {mean_degree:.0%})",
            )
            canvas.text(x, y + 4, str(cluster.size), size=11, fill="#ffffff", anchor="middle", weight="bold")

    def _graticule(self, canvas: SvgCanvas, projection: WebMercator, box: BoundingBox) -> None:
        """Light lat/lon grid lines every ~1/4 of the box."""
        for i in range(1, 4):
            lat = box.south + box.height_deg * i / 4
            lon = box.west + box.width_deg * i / 4
            x_left, y = projection.project(GeoPoint(lat, box.west))
            x_right, _ = projection.project(GeoPoint(lat, box.east))
            canvas.line(x_left, y, x_right, y, stroke="#c9d6e2", width=0.8)
            x, y_top = projection.project(GeoPoint(box.north, lon))
            _, y_bottom = projection.project(GeoPoint(box.south, lon))
            canvas.line(x, y_top, x, y_bottom, stroke="#c9d6e2", width=0.8)

    def _legend(self, canvas: SvgCanvas) -> None:
        steps = 5
        x0 = 20
        y0 = self.height - 30
        canvas.text(x0, y0 - 8, "match degree", size=10)
        for i in range(steps):
            degree = i / (steps - 1)
            canvas.rect(x0 + i * 24, y0, 24, 10, fill=match_degree_color(degree))
        canvas.text(x0, y0 + 22, "0%", size=9)
        canvas.text(x0 + steps * 24, y0 + 22, "100%", size=9, anchor="end")
