"""Constraint-waterfall charts for query provenance (``/explore``).

The advanced search of the paper (Fig. 1) evaluates several constraints
and intersects their match sets; this renderer shows that narrowing as a
horizontal waterfall: one bar per intersection step, the light segment
marking the candidates the step discarded and the solid segment those it
kept. Reading top to bottom answers the operator question the aggregate
metrics cannot: *which constraint killed my result set, and how much did
it cost?* Per-stage wall times (when provided) annotate each bar.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import VizError
from repro.viz.color import categorical_color
from repro.viz.svg import SvgCanvas

_MARGIN = 40
_LABEL_SPACE = 230


def _shorten(text: str, limit: int = 34) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


class WaterfallChart:
    """Renders intersection steps ``[{constraint, before, after}, ...]``.

    ``before`` is None for the first step (nothing to narrow yet). Each
    step may carry an optional ``seconds`` (the constraint's evaluation
    wall time) which is rendered into the bar annotation. The input is
    exactly the ``waterfall`` list of a
    :class:`~repro.obs.provenance.QueryProvenance` record, with stage
    timings merged in by the caller.
    """

    def __init__(self, steps: Sequence[Dict[str, Any]], title: str = ""):
        if not steps:
            raise VizError("waterfall chart needs at least one step")
        self.steps: List[Dict[str, Any]] = []
        for step in steps:
            if "constraint" not in step or "after" not in step:
                raise VizError(f"waterfall step needs constraint and after: {step!r}")
            after = int(step["after"])
            before = step.get("before")
            if after < 0 or (before is not None and int(before) < after):
                raise VizError(
                    f"waterfall step must narrow (before >= after >= 0): {step!r}"
                )
            self.steps.append(
                {
                    "constraint": str(step["constraint"]),
                    "before": None if before is None else int(before),
                    "after": after,
                    "seconds": step.get("seconds"),
                }
            )
        self.title = title

    def to_svg(self, width: int = 720, height: int = 0) -> str:
        """Render the waterfall as an SVG document string."""
        bar_height = 24
        gap = 10
        height = height or (_MARGIN * 2 + len(self.steps) * (bar_height + gap))
        canvas = SvgCanvas(width, height, background="#ffffff")
        if self.title:
            canvas.text(
                width / 2, 22, self.title, size=15, anchor="middle", weight="bold"
            )
        plot_width = width - _LABEL_SPACE - _MARGIN - 120
        scale_max = max(
            max(step["after"], step["before"] or 0) for step in self.steps
        ) or 1
        y = _MARGIN
        for i, step in enumerate(self.steps):
            before = step["before"]
            after = step["after"]
            canvas.text(
                _LABEL_SPACE - 8,
                y + bar_height * 0.7,
                _shorten(step["constraint"]),
                size=12,
                anchor="end",
            )
            full_length = (before or 0) / scale_max * plot_width
            if before is not None and before > after:
                # The discarded candidates: a light tail behind the kept bar.
                canvas.rect(
                    _LABEL_SPACE,
                    y,
                    max(full_length, 0.5),
                    bar_height,
                    fill="#d9d9d9",
                    title=f"{step['constraint']}: dropped {before - after}",
                )
            kept_length = after / scale_max * plot_width
            canvas.rect(
                _LABEL_SPACE,
                y,
                max(kept_length, 0.5),
                bar_height,
                fill=categorical_color(i),
                title=f"{step['constraint']}: kept {after}",
            )
            annotation = str(after) if before is None else f"{before} → {after}"
            if step["seconds"] is not None:
                annotation += f" ({step['seconds'] * 1000:.2f} ms)"
            anchor_x = _LABEL_SPACE + max(kept_length, full_length)
            canvas.text(anchor_x + 6, y + bar_height * 0.7, annotation, size=11)
            y += bar_height + gap
        canvas.line(_LABEL_SPACE, _MARGIN - 4, _LABEL_SPACE, y - gap + 4, stroke="#333333")
        return canvas.to_string()
