"""Pie diagrams over facet distributions (Fig. 2)."""

from __future__ import annotations

import math
from typing import Any, Sequence, Tuple

from repro.errors import VizError
from repro.viz.color import categorical_color
from repro.viz.svg import SvgCanvas


class PieChart:
    """A pie chart of ``(label, value)`` pairs with a side legend."""

    def __init__(self, data: Sequence[Tuple[Any, float]], title: str = ""):
        if not data:
            raise VizError("pie chart needs at least one data point")
        cleaned = []
        for label, value in data:
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise VizError(f"pie values must be non-negative numbers, got {value!r}")
            cleaned.append((("(none)" if label is None else str(label)), float(value)))
        if sum(value for _, value in cleaned) <= 0:
            raise VizError("pie chart needs a positive total")
        self.data = cleaned
        self.title = title

    def to_svg(self, size: int = 360) -> str:
        """Render the chart as an SVG document string."""
        legend_width = 180
        canvas = SvgCanvas(size + legend_width, size, background="#ffffff")
        cx = size / 2
        cy = size / 2 + (10 if self.title else 0)
        radius = size / 2 - 30
        if self.title:
            canvas.text((size + legend_width) / 2, 20, self.title, size=15, anchor="middle", weight="bold")
        total = sum(value for _, value in self.data)
        angle = -math.pi / 2  # start at 12 o'clock
        for i, (label, value) in enumerate(self.data):
            fraction = value / total
            sweep = fraction * 2 * math.pi
            color = categorical_color(i)
            if fraction >= 0.999999:
                canvas.circle(cx, cy, radius, fill=color, title=f"{label}: {value:g}")
            else:
                x1 = cx + radius * math.cos(angle)
                y1 = cy + radius * math.sin(angle)
                x2 = cx + radius * math.cos(angle + sweep)
                y2 = cy + radius * math.sin(angle + sweep)
                large = 1 if sweep > math.pi else 0
                d = (
                    f"M {cx:.2f} {cy:.2f} L {x1:.2f} {y1:.2f} "
                    f"A {radius:.2f} {radius:.2f} 0 {large} 1 {x2:.2f} {y2:.2f} Z"
                )
                canvas.path(d, fill=color, title=f"{label}: {value:g} ({fraction:.0%})")
            angle += sweep
            # Legend entry.
            ly = 40 + i * 20
            canvas.rect(size + 10, ly - 10, 12, 12, fill=color)
            canvas.text(size + 28, ly, f"{label} ({fraction:.0%})", size=12)
        return canvas.to_string()
