"""Semantic-relation graph rendering: DOT export + native SVG renderer.

"Graph visualization represents the associations (with directed arcs) of
sensor metadata in the results as each metadata page may have references
in several properties." Nodes are pages, labelled directed arcs are the
properties connecting them. :func:`to_dot` emits GraphViz input (what the
production system fed the GraphViz library); :class:`GraphRenderer`
renders directly to SVG using the force layout.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import VizError
from repro.viz.color import categorical_color
from repro.viz.layout import force_directed_layout
from repro.viz.svg import SvgCanvas

# One edge: (source, target, label) — label is the linking property.
Edge = Tuple[str, str, str]


def _dot_quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def to_dot(
    nodes: Sequence[str],
    edges: Iterable[Edge],
    name: str = "metadata",
    node_groups: Optional[Dict[str, str]] = None,
) -> str:
    """Emit a GraphViz ``digraph``; ``node_groups`` color-classifies nodes.

    Grouping reproduces the paper's "classification of pages based on
    similarities of their metadata": pages of the same group share a color.
    """
    lines = [f"digraph {_dot_quote(name)} {{", "  rankdir=LR;", "  node [shape=box];"]
    groups = sorted({group for group in (node_groups or {}).values()})
    group_color = {group: categorical_color(i) for i, group in enumerate(groups)}
    for node in nodes:
        attrs = ""
        if node_groups and node in node_groups:
            color = group_color[node_groups[node]]
            attrs = f' [style=filled, fillcolor={_dot_quote(color)}]'
        lines.append(f"  {_dot_quote(node)}{attrs};")
    for source, target, label in edges:
        lines.append(
            f"  {_dot_quote(source)} -> {_dot_quote(target)} [label={_dot_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


class GraphRenderer:
    """Renders a labelled directed graph to SVG."""

    def __init__(self, width: int = 800, height: int = 600, seed: int = 0):
        if width <= 0 or height <= 0:
            raise VizError(f"canvas must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self.seed = seed

    def render(
        self,
        nodes: Sequence[str],
        edges: Iterable[Edge],
        node_groups: Optional[Dict[str, str]] = None,
        title: str = "",
    ) -> str:
        """Render nodes and labelled directed edges as an SVG string."""
        nodes = list(nodes)
        edges = list(edges)
        plain_edges = [(a, b) for a, b, _ in edges]
        positions = force_directed_layout(
            nodes, plain_edges, self.width, self.height, seed=self.seed
        )
        canvas = SvgCanvas(self.width, self.height, background="#ffffff")
        if title:
            canvas.text(self.width / 2, 20, title, size=15, anchor="middle", weight="bold")
        groups = sorted({g for g in (node_groups or {}).values()})
        group_color = {g: categorical_color(i) for i, g in enumerate(groups)}
        for source, target, label in edges:
            if source not in positions or target not in positions:
                continue
            x1, y1 = positions[source]
            x2, y2 = positions[target]
            canvas.line(x1, y1, x2, y2, stroke="#888888", width=1.2)
            self._arrow_head(canvas, x1, y1, x2, y2)
            canvas.text((x1 + x2) / 2, (y1 + y2) / 2 - 4, label, size=9, fill="#555555", anchor="middle")
        for node in nodes:
            x, y = positions[node]
            color = "#dddddd"
            if node_groups and node in node_groups:
                color = group_color[node_groups[node]]
            canvas.circle(x, y, 14, fill=color, stroke="#333333", title=node)
            canvas.text(x, y - 18, _short(node), size=10, anchor="middle")
        return canvas.to_string()

    @staticmethod
    def _arrow_head(canvas: SvgCanvas, x1, y1, x2, y2, size: float = 6.0) -> None:
        dx, dy = x2 - x1, y2 - y1
        dist = math.hypot(dx, dy) or 1e-6
        # Stop the head at the node circle boundary.
        tip_x = x2 - dx / dist * 14
        tip_y = y2 - dy / dist * 14
        angle = math.atan2(dy, dx)
        left = (
            tip_x - size * math.cos(angle - math.pi / 6),
            tip_y - size * math.sin(angle - math.pi / 6),
        )
        right = (
            tip_x - size * math.cos(angle + math.pi / 6),
            tip_y - size * math.sin(angle + math.pi / 6),
        )
        canvas.polygon([(tip_x, tip_y), left, right], fill="#888888")


def _short(title: str, limit: int = 22) -> str:
    return title if len(title) <= limit else title[: limit - 1] + "…"
