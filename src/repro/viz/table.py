"""Plain tabular result formats (text and HTML)."""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.errors import VizError


def _cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_text_table(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """An aligned monospace table with a header rule."""
    if not columns:
        raise VizError("a table needs at least one column")
    for row in rows:
        if len(row) != len(columns):
            raise VizError(f"row has {len(row)} cells but {len(columns)} columns declared")
    texts = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in texts)) if texts else len(str(column))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * width for width in widths)
    lines = [header, rule]
    for row in texts:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def _html_escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def render_html_table(
    columns: Sequence[str], rows: Sequence[Sequence[Any]], caption: str = ""
) -> str:
    """A semantic HTML table (used by the web demo)."""
    if not columns:
        raise VizError("a table needs at least one column")
    parts: List[str] = ["<table>"]
    if caption:
        parts.append(f"<caption>{_html_escape(caption)}</caption>")
    parts.append("<thead><tr>")
    parts.extend(f"<th>{_html_escape(str(col))}</th>" for col in columns)
    parts.append("</tr></thead><tbody>")
    for row in rows:
        if len(row) != len(columns):
            raise VizError(f"row has {len(row)} cells but {len(columns)} columns declared")
        parts.append("<tr>")
        parts.extend(f"<td>{_html_escape(_cell(value))}</td>" for value in row)
        parts.append("</tr>")
    parts.append("</tbody></table>")
    return "".join(parts)
