"""The sharded search engine: per-(constraint, shard) fan-out, same bytes.

:class:`ShardedSearchEngine` is the unsharded
:class:`~repro.core.engine.AdvancedSearchEngine` with exactly one seam
overridden — constraint evaluation. Where the base engine runs one job
per constraint against its repository, this one expands each constraint
into per-shard cells (:mod:`repro.shard.fanout`), fans them out through
the same ``repro.perf.pool`` backend-selection matrix (thread, process
or serial — cells are picklable by design, so the process backend's
fork-snapshot path finally gets coarse-grained CPU work), and merges the
per-shard partials back into the base engine's exact constraint
outputs. Everything downstream — candidate intersection, BM25/PageRank
blending, the top-k heap, caching, provenance — is inherited untouched,
which is what makes the byte-identity guarantee (and its test) cheap:
only the constraint outputs need proving, and those merge exactly.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.core.engine import AdvancedSearchEngine
from repro.core.query import SearchQuery
from repro.errors import ReproError
from repro.perf.pool import TASK_KINDS, parallel_map
from repro.shard import fanout
from repro.shard.ranking import ShardedPageRankRanker


class ShardedSearchEngine(AdvancedSearchEngine):
    """Advanced search over a :class:`ShardedRepository`, byte-identical."""

    def __init__(
        self,
        smr: Any,
        ranker: Any = None,
        fanout_kind: str = "cpu",
        **kwargs: Any,
    ):
        if fanout_kind not in TASK_KINDS:
            raise ReproError(
                f"unknown fan-out kind {fanout_kind!r}; expected one of "
                f"{sorted(TASK_KINDS)}"
            )
        if ranker is None:
            ranker = ShardedPageRankRanker(smr)
        super().__init__(smr, ranker=ranker, **kwargs)
        #: Which ``repro.perf.pool`` task kind shard cells are labelled
        #: with — ``"cpu"`` lets the process backend claim them when the
        #: degradation matrix allows, ``"io"`` pins the thread pool,
        #: ``"serial"`` forces in-line evaluation (useful in tests).
        self.fanout_kind = fanout_kind

    def _evaluate_constraints(
        self, query: SearchQuery, timed: bool
    ) -> Tuple[List[Any], List[float]]:
        """Fan each constraint out per shard and merge the partials.

        Both paths build generation-stamped cells and let the pool
        schedule them; ``merge_cells`` re-evaluates any
        stale/miss/dropped cell locally, so every backend degradation
        level returns identical outputs. In timed (provenance) mode each
        cell reports its own wall seconds and a constraint's stage cost
        is the *sum* over its shards — aggregate work, not elapsed time,
        since the cells ran concurrently.
        """
        specs = fanout.constraint_specs(query, spatial_index=self.spatial_index)
        if not specs:
            return [], []
        cells = fanout.build_cells(self.smr, specs)
        evaluator = fanout.evaluate_cell_timed if timed else fanout.evaluate_cell
        raw = parallel_map(
            evaluator,
            cells,
            pool=self.pool,
            kind=self.fanout_kind,
            label="shard.fanout",
        )
        job_seconds: List[float] = []
        if timed:
            shards = self.smr.shard_count
            timed_raw = [entry if entry is not None else (0.0, None) for entry in raw]
            job_seconds = [
                sum(seconds for seconds, _ in timed_raw[i * shards : (i + 1) * shards])
                for i in range(len(specs))
            ]
            raw = [result for _, result in timed_raw]
        return fanout.merge_cells(self.smr, specs, cells, raw), job_seconds

    def spatial_index_info(self) -> dict:
        """Per-shard R-tree state (the global memo is never built here)."""
        return {
            "enabled": self.spatial_index,
            "sharded": True,
            "generation": None,
            "current_generation": self.smr.mutation_count,
            "shards": self.smr.shard_spatial_info(),
        }
