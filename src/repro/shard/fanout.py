"""Per-(constraint, shard) fan-out cells for the sharded query path.

The unsharded engine fans one job per *constraint* onto the pool
(Section II's SQL + SPARQL + keyword + spatial combination, Fig. 1);
here each constraint splits further into one **cell** per shard — a
small, picklable ``(registry_key, shard, generation, spec)`` tuple that
:func:`evaluate_cell` (a module-level function, so it crosses a process
boundary by name) resolves against a registered
:class:`~repro.shard.repository.ShardedRepository`.

Process-backend snapshot protocol: forked workers inherit the registry —
and through it a copy-on-write snapshot of every shard — at fork time.
Each cell carries the shard generation the parent observed when it built
the cell; a worker whose snapshot has a different generation answers
``"stale"`` instead of computing on old data, and a worker that never
saw the repository answers ``"miss"``. The parent re-evaluates those
cells locally in :func:`merge_cells`, so every degradation level returns
the same merged constraint outputs — only the wall clock changes,
exactly the ``repro.perf.pool`` contract.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
import zlib
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.core.query import PropertyFilter, SearchQuery
from repro.errors import QueryError, ReproError
from repro.text.inverted_index import analyze, merged_search


def shard_of(title: str, shard_count: int) -> int:
    """The shard owning ``title``: crc32 of the canonical title key.

    Uses the same ``strip().lower()`` canonicalization as the wiki's
    title keys, so the case-insensitive aliases of one page always land
    on one shard. crc32 is stable across processes and Python versions
    (unlike ``hash``), which the fork-snapshot protocol requires.
    """
    key = title.strip().lower().encode("utf-8")
    return zlib.crc32(key) % max(1, shard_count)


# ----------------------------------------------------------------------
# Repository registry (parent-side handles; fork-time snapshots)
# ----------------------------------------------------------------------

_registry: Dict[str, Tuple[Any, int]] = {}
_registry_lock = threading.Lock()
_registry_seq = itertools.count(1)


def register_repository(repo: Any) -> str:
    """Register ``repo`` for cell evaluation; returns its registry key.

    The registry holds a weak reference — registration never extends a
    repository's lifetime, and cells naming a collected repository
    resolve to ``"miss"``.
    """
    key = f"shard-repo-{os.getpid()}-{next(_registry_seq)}"
    with _registry_lock:
        _registry[key] = (weakref.ref(repo), os.getpid())
    return key


def _lookup(key: str) -> Tuple[Optional[Any], int]:
    with _registry_lock:
        entry = _registry.get(key)
    if entry is None:
        return None, 0
    ref, owner_pid = entry
    return ref(), owner_pid


# ----------------------------------------------------------------------
# Constraint specs and cells
# ----------------------------------------------------------------------


def constraint_specs(query: SearchQuery, spatial_index: bool = True) -> List[tuple]:
    """The query's independent constraints as picklable specs.

    Order matches the unsharded engine's job list exactly — keyword,
    filters in declaration order, bbox — because :meth:`_search`
    reassembles outputs positionally.
    """
    specs: List[tuple] = []
    if query.keyword:
        specs.append(("keyword", query.keyword, tuple(analyze(query.keyword))))
    specs.extend(("filter", flt) for flt in query.filters)
    if query.bbox is not None:
        box = query.bbox
        specs.append(
            ("bbox", (box.south, box.north, box.west, box.east), bool(spatial_index))
        )
    return specs


def build_cells(repo: Any, specs: Sequence[tuple]) -> List[tuple]:
    """One cell per (spec, shard), stamped with the shard's generation."""
    return [
        (repo.registry_key, shard, repo.shard_generation(shard), spec)
        for spec in specs
        for shard in range(repo.shard_count)
    ]


def evaluate_cell(cell: tuple) -> Tuple[str, Any]:
    """Evaluate one (constraint, shard) cell; never raises for staleness.

    Returns ``(verdict, value)`` where the verdict is ``"ok"`` (value is
    the shard's partial result), ``"stale"`` (the evaluating process's
    view of the shard is at a different generation than the cell
    expects) or ``"miss"`` (this process never saw the repository —
    e.g. a pool worker forked before it was built).
    """
    key, shard, expected_generation, spec = cell
    repo, owner_pid = _lookup(key)
    if repo is None:
        return ("miss", None)
    # In a forked worker the repository is a frozen copy-on-write
    # snapshot: nothing mutates it there, and its locks may have been
    # captured mid-acquisition by an unrelated parent thread — so worker
    # processes read lock-free, guarded by the generation check instead.
    locked = os.getpid() == owner_pid
    if repo.shard_generation(shard) != expected_generation:
        return ("stale", None)
    return ("ok", evaluate_spec_on_shard(repo, shard, spec, locked=locked))


def evaluate_cell_timed(cell: tuple) -> Tuple[float, Tuple[str, Any]]:
    """:func:`evaluate_cell` plus its own wall seconds (provenance mode).

    Module-level like :func:`evaluate_cell`, so the timed path crosses a
    process boundary the same way. The sharded engine sums a
    constraint's cell seconds into its provenance stage cost —
    aggregate work across shards, not elapsed wall clock (the cells ran
    concurrently).
    """
    import time

    started = time.perf_counter()
    result = evaluate_cell(cell)
    return (time.perf_counter() - started, result)


def evaluate_spec_on_shard(
    repo: Any, shard: int, spec: tuple, locked: bool = True
) -> Any:
    """One shard's partial result for one constraint spec."""
    if spec[0] == "keyword":
        return repo.shard_keyword_segment(shard, spec[2], locked=locked)
    if spec[0] == "filter":
        return repo.shard_filter_matches(shard, spec[1], locked=locked)
    if spec[0] == "bbox":
        return repo.shard_bbox_titles(shard, spec[1], use_index=spec[2], locked=locked)
    raise ReproError(f"unknown constraint spec {spec[0]!r}")


def evaluate_spec_local(repo: Any, spec: tuple) -> Any:
    """Evaluate one spec over every shard serially and merge (no cells).

    The provenance (timed) path uses this so each constraint's wall time
    covers its full per-shard evaluation, and :func:`merge_cells` uses
    it per cell as the stale/miss fallback.
    """
    parts = [
        evaluate_spec_on_shard(repo, shard, spec)
        for shard in range(repo.shard_count)
    ]
    return merge_spec(repo, spec, parts)


def merge_cells(
    repo: Any, specs: Sequence[tuple], cells: Sequence[tuple], raw: Sequence[Any]
) -> List[Any]:
    """Merge raw cell results back into one output per spec.

    ``raw`` is spec-major (``build_cells`` order). Cells that came back
    ``stale``/``miss`` — or ``None``, when a backend degradation dropped
    them — are re-evaluated locally against the live repository, so the
    merged outputs never mix generations silently.
    """
    registry = obs.get_registry()
    counter = None
    if registry.enabled:
        counter = registry.counter(
            "shard_fanout_cells_total",
            "Per-(constraint, shard) fan-out cells by worker verdict.",
            labels=("verdict",),
        )
    outputs: List[Any] = []
    count = repo.shard_count
    for i, spec in enumerate(specs):
        parts: List[Any] = []
        for shard in range(count):
            result = raw[i * count + shard]
            verdict, value = result if result is not None else ("miss", None)
            if counter is not None:
                counter.labels(verdict).inc()
            if verdict != "ok":
                value = evaluate_spec_on_shard(repo, shard, spec)
            parts.append(value)
        outputs.append(merge_spec(repo, spec, parts))
    return outputs


# ----------------------------------------------------------------------
# Merging per-shard partials
# ----------------------------------------------------------------------


class _SegmentView:
    """Duck-typed :class:`InvertedIndex` over one shard's postings snapshot.

    Provides exactly the accessors :func:`merged_search` consumes, backed
    by the integers and postings a ``shard_keyword_segment`` snapshot
    carries — so merging fork-worker snapshots scores identically to
    merging the live segments.
    """

    __slots__ = ("document_count", "total_token_count", "_postings", "_lengths")

    def __init__(self, snapshot: tuple):
        (
            self.document_count,
            self.total_token_count,
            self._postings,
            self._lengths,
        ) = snapshot

    def term_documents(self, term: str) -> Dict[str, int]:
        return self._postings.get(term, {})

    def doc_length(self, doc_id: str) -> int:
        return self._lengths.get(doc_id, 0)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._lengths


def merge_spec(repo: Any, spec: tuple, parts: Sequence[Any]) -> Any:
    """Combine per-shard partial results into the global constraint output.

    Keyword partials merge through :func:`merged_search` (exact integer
    statistics — byte-identical to one global index); filter partials
    union their matches with the unsharded error semantics preserved;
    bbox partials are a plain set union (the hash partition is disjoint).
    """
    if spec[0] == "keyword":
        views = [_SegmentView(part) for part in parts]
        return merged_search(views, spec[1])
    if spec[0] == "filter":
        return _merge_filter(repo, spec[1], parts)
    if spec[0] == "bbox":
        matches: Set[str] = set()
        for part in parts:
            matches |= part
        return matches
    raise ReproError(f"unknown constraint spec {spec[0]!r}")


def _merge_filter(repo: Any, flt: PropertyFilter, parts: Sequence[Any]) -> Set[str]:
    """Union per-shard filter matches, reproducing unsharded errors.

    SQL partials carry ``(matches, errors_by_kind)``; the merged filter
    fails — with the exact unsharded message — only when every mapped
    kind failed somewhere and nothing matched anywhere, mirroring
    ``AdvancedSearchEngine._sql_filter``. (Shards share one schema, so a
    kind that fails at plan time fails identically on every shard.)
    SPARQL partials carry subject-IRI values, mapped back to titles
    through the repository's generation-memoized IRI map.
    """
    if parts and parts[0][0] == "sparql":
        iris: Set[str] = set()
        for _, part_iris, _ in parts:
            iris |= part_iris
        iri_to_title = repo.iri_title_map()
        matches = set()
        for value in iris:
            title = iri_to_title.get(value)
            if title is not None:
                matches.add(title)
        return matches
    kinds = [
        kind
        for kind in repo.mapping.kinds
        if repo.mapping.column_for_property(kind, flt.prop) is not None
    ]
    matches = set()
    errors_by_kind: Dict[str, str] = {}
    for _, part_matches, part_errors in parts:
        matches |= part_matches
        for kind, message in part_errors.items():
            errors_by_kind.setdefault(kind, message)
    if errors_by_kind and not matches and len(errors_by_kind) == len(kinds):
        joined = "; ".join(f"{kind}: {errors_by_kind[kind]}" for kind in kinds)
        raise QueryError(f"filter {flt.describe()} failed on every kind: {joined}")
    return matches
