"""A hash-partitioned federation of SensorMetadataRepositories.

:class:`ShardedRepository` owns N independent
:class:`~repro.smr.repository.SensorMetadataRepository` shards and
presents the *exact* unsharded facade on top of them — same methods,
same orderings, same error messages — so
:class:`repro.core.engine.AdvancedSearchEngine`,
:class:`repro.core.ranking.PageRankRanker` and the web layer run
unchanged against it. The paper's single repository (Section II)
becomes a federation merged at the edge:

- **Routing.** :func:`~repro.shard.fanout.shard_of` hashes the
  canonical title key (crc32), so a page and all its case variants live
  on exactly one shard; writers lock *one* shard, readers that need a
  global snapshot lock all of them in index order (deadlock-free).
- **Global orderings are reproduced, not approximated.** The federated
  wiki view sorts the union of per-shard titles with the same
  case-insensitive key the single wiki uses, so page indices, link
  graphs (and hence PageRank), RDF triple insertion order (and hence
  SPARQL row order) are all byte-identical to the unsharded build.
- **Segment statistics sum exactly.** BM25's corpus statistics are
  integers; :func:`repro.text.inverted_index.merged_search` recovers
  the global scores bitwise from the per-shard segments.
- **Staleness is per shard.** Every shard keeps its own mutation
  counter; the global generation is their sum (monotone), and the
  per-shard counters drive the sharded ranker's staleness-lag gauges.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import RelationalError, SmrError
from repro.rdf.graph import Graph
from repro.rdf.sparql import SparqlEngine, SparqlResult
from repro.relational.database import ResultSet
from repro.shard import fanout
from repro.shard.fanout import shard_of
from repro.smr.model import KIND_ORDER, record_class_for
from repro.smr.repository import SensorMetadataRepository, default_schema_mapping
from repro.text.inverted_index import InvertedIndex, SearchHit, merged_search
from repro.wiki.schema_map import SchemaMapping

import re


class FederatedLock:
    """All shard locks as one: acquire every shard in index order.

    Readers that need a cross-shard snapshot (global titles, link
    graphs, RDF export) hold every shard's read lock at once; writers
    through the federated facade would hold every write lock (only
    maintenance paths do — :meth:`ShardedRepository.register` locks just
    the owning shard). The fixed 0..n-1 acquisition order makes the
    composite deadlock-free against single-shard writers, and the
    underlying per-shard locks stay reentrant for readers.
    """

    def __init__(self, locks: Sequence[Any]):
        self._locks = list(locks)

    @contextmanager
    def read(self):
        """Acquire every shard's read lock, in shard order."""
        with ExitStack() as stack:
            for lock in self._locks:
                stack.enter_context(lock.read())
            yield

    @contextmanager
    def write(self):
        """Acquire every shard's write lock, in shard order."""
        with ExitStack() as stack:
            for lock in self._locks:
                stack.enter_context(lock.write())
            yield


class FederatedWikiView:
    """The read surface of a single :class:`WikiSite`, over all shards.

    Per-page methods route to the owning shard; corpus-wide methods
    iterate the *global* case-insensitively sorted title list, exactly
    replicating the single wiki's loops — including edge and triple
    insertion order. Mutations must go through
    :meth:`ShardedRepository.register`; ``save``/``delete`` raise.

    Callers needing a consistent cross-shard snapshot must hold the
    repository's federated read lock (the SMR facade methods and the
    ranker's ``_recompute`` already do).
    """

    def __init__(self, repo: "ShardedRepository"):
        self._repo = repo

    @staticmethod
    def _key(title: str) -> str:
        return title.strip().lower()

    def _owner(self, title: str):
        return self._repo.shards[shard_of(title, self._repo.shard_count)].wiki

    # -- page access ---------------------------------------------------

    def has(self, title: str) -> bool:
        """True when the owning shard holds ``title``."""
        return self._owner(title).has(title)

    def get(self, title: str):
        """Fetch the page from its owning shard."""
        return self._owner(title).get(title)

    def parsed(self, title: str):
        """Parsed wikitext of the page, from its owning shard."""
        return self._owner(title).parsed(title)

    def annotations(self, title: str) -> List[Tuple[str, Any]]:
        """Semantic annotations of the page, from its owning shard."""
        return self._owner(title).annotations(title)

    def save(self, *args: Any, **kwargs: Any):
        """Rejected: the federated view is read-only."""
        raise SmrError(
            "the federated wiki view is read-only; write through "
            "ShardedRepository.register()"
        )

    def delete(self, *args: Any, **kwargs: Any):
        """Rejected: the federated view is read-only."""
        raise SmrError(
            "the federated wiki view is read-only; write through "
            "ShardedRepository.register()"
        )

    # -- corpus-wide views (global title order) -------------------------

    @property
    def page_count(self) -> int:
        return sum(shard.wiki.page_count for shard in self._repo.shards)

    def titles(self) -> List[str]:
        """Union of shard titles, in the single wiki's global sort order."""
        merged: List[str] = []
        for shard in self._repo.shards:
            merged.extend(shard.wiki.titles())
        merged.sort(key=str.lower)
        return merged

    def pages(self) -> Iterator[Any]:
        """Iterate pages in the global (sorted-union) title order."""
        for title in self.titles():
            yield self.get(title)

    def titles_in_namespace(self, namespace: str) -> List[str]:
        """Global titles restricted to one namespace."""
        wanted = namespace.lower()
        return [t for t in self.titles() if self.get(t).namespace.lower() == wanted]

    def categories(self) -> Dict[str, List[str]]:
        """Category -> member titles over the whole federation."""
        members: Dict[str, List[str]] = {}
        for title in self.titles():
            for category in self.parsed(title).categories:
                members.setdefault(category, []).append(title)
        return members

    def pages_in_category(self, category: str) -> List[str]:
        """Member titles of one category over the whole federation."""
        wanted = category.lower()
        return [
            title
            for title in self.titles()
            if any(c.lower() == wanted for c in self.parsed(title).categories)
        ]

    def page_index(self) -> Dict[str, int]:
        """Global title -> row index, in global title order."""
        return {self._key(title): i for i, title in enumerate(self.titles())}

    def link_graph(self):
        """Hyperlink graph over global titles (unsharded iteration order)."""
        from repro.pagerank.webgraph import LinkGraph

        index = self.page_index()
        graph = LinkGraph(len(index))
        for title in self.titles():
            src = index[self._key(title)]
            for target in self.parsed(title).links:
                dst = index.get(self._key(target))
                if dst is not None and dst != src:
                    graph.add_edge(src, dst)
        return graph

    def semantic_graph(self):
        """Typed-link graph over global titles (unsharded iteration order)."""
        from repro.pagerank.webgraph import LinkGraph

        index = self.page_index()
        graph = LinkGraph(len(index))
        for title in self.titles():
            src = index[self._key(title)]
            for _, value in self.parsed(title).annotations:
                if not isinstance(value, str):
                    continue
                dst = index.get(self._key(value))
                if dst is not None and dst != src:
                    graph.add_edge(src, dst)
        return graph

    def property_names(self) -> List[str]:
        """Sorted union of semantic property names across shards."""
        names: Set[str] = set()
        for shard in self._repo.shards:
            names.update(shard.wiki.property_names())
        return sorted(names)

    def property_values(self, prop: str) -> List[Any]:
        """Distinct values of one property across shards, unsharded order."""
        wanted = prop.lower()
        values: List[Any] = []
        for title in self.titles():
            values.extend(self.parsed(title).annotation_values(wanted))
        return values

    def export_rdf(self, resolver: Any = None) -> Graph:
        """Global RDF export, iterating titles in the single wiki's order.

        Each page's triples are emitted by its owning shard with *this
        federation* as the resolver, so cross-shard references become
        IRIs exactly as they would in one global wiki — and the triple
        insertion order (hence SPARQL result order) matches bitwise.
        """
        site = self if resolver is None else resolver
        graph = Graph()
        for title in self.titles():
            self._owner(title).export_page_rdf(graph, title, resolver=site)
        return graph

    def __repr__(self) -> str:
        return f"FederatedWikiView(shards={self._repo.shard_count}, pages={self.page_count})"


_AGGREGATE_RE = re.compile(r"\b(COUNT|SUM|AVG|MIN|MAX)\s*\(", re.IGNORECASE)
_LIMIT_RE = re.compile(r"\bLIMIT\s+(\d+)\s*;?\s*$", re.IGNORECASE)
_ORDER_RE = re.compile(r"\bORDER\s+BY\b", re.IGNORECASE)


class FederatedDatabaseView:
    """Fan-union SQL over the shards' identical relational schemas.

    ``SELECT`` statements run on every shard and concatenate rows in
    shard order (a trailing ``LIMIT k`` is re-applied to the union);
    ``EXPLAIN`` answers from shard 0, whose planner and schema are
    representative. Aggregates, ``ORDER BY`` and writes raise — per-shard
    aggregation does not merge losslessly and writes must route through
    :meth:`ShardedRepository.register` to keep all stores in sync. The
    engine's filter fan-out never hits these limits: its probes are
    plain ``SELECT title FROM kind WHERE ...`` per shard.
    """

    def __init__(self, repo: "ShardedRepository"):
        self._repo = repo

    @property
    def table_names(self) -> List[str]:
        return self._repo.shards[0].db.table_names

    def catalog_stats(self) -> Dict[str, Any]:
        """Per-shard catalog statistics, marked ``sharded``."""
        return {
            "sharded": True,
            "shards": [shard.db.catalog_stats() for shard in self._repo.shards],
        }

    def execute(self, sql: str) -> ResultSet:
        """Fan a SELECT across shards and concatenate rows (LIMIT trimmed after the union)."""
        text = sql.strip()
        upper = text.upper()
        if upper.startswith("EXPLAIN"):
            return self._repo.shards[0].db.execute(sql)
        if not upper.startswith("SELECT"):
            raise SmrError(
                "the federated SQL view is read-only; write through "
                "ShardedRepository.register()"
            )
        if _AGGREGATE_RE.search(text):
            raise SmrError(
                "aggregates are not supported on the federated SQL view "
                "(per-shard aggregates do not merge losslessly); "
                "query shards individually"
            )
        if _ORDER_RE.search(text):
            raise SmrError(
                "ORDER BY is not supported on the federated SQL view "
                "(per-shard order does not merge); sort client-side"
            )
        limit = _LIMIT_RE.search(text)
        columns: Optional[List[str]] = None
        rows: List[Tuple[Any, ...]] = []
        for shard in self._repo.shards:
            result = shard.db.execute(sql)
            if columns is None:
                columns = list(result.columns)
            rows.extend(result.rows)
        if limit is not None:
            rows = rows[: int(limit.group(1))]
        return ResultSet(columns or [], rows)

    def __repr__(self) -> str:
        return f"FederatedDatabaseView(shards={self._repo.shard_count})"


class ShardedRepository:
    """N hash-partitioned SMR shards behind the unsharded SMR facade."""

    def __init__(
        self, shard_count: int = 4, mapping: Optional[SchemaMapping] = None
    ):
        if shard_count < 1:
            raise SmrError(f"shard count must be >= 1, got {shard_count}")
        self.shard_count = int(shard_count)
        self.mapping = mapping or default_schema_mapping()
        self.shards = [
            SensorMetadataRepository(mapping=self.mapping)
            for _ in range(self.shard_count)
        ]
        self.wiki = FederatedWikiView(self)
        self.db = FederatedDatabaseView(self)
        self.lock = FederatedLock([shard.lock for shard in self.shards])
        #: Handle under which process-pool workers resolve this
        #: repository from their fork-time snapshot (see repro.shard.fanout).
        self.registry_key = fanout.register_repository(self)
        # Generation-keyed memos. The global RDF export and IRI map key on
        # the *global* mutation count; the per-shard RDF exports do too,
        # because a page added to any shard can flip another shard's
        # Literal objects into IRIs (the resolver is the federation). Only
        # the per-shard spatial indexes key on their own shard's counter —
        # locations are strictly shard-local.
        self._rdf_lock = threading.Lock()
        self._global_rdf: Optional[Tuple[int, Graph]] = None
        self._shard_rdf: List[Optional[Tuple[int, Graph]]] = [None] * self.shard_count
        self._spatial_lock = threading.Lock()
        self._shard_spatial: List[Optional[Tuple[int, Any]]] = [None] * self.shard_count
        self._iri_lock = threading.Lock()
        self._iri_memo: Optional[Tuple[int, Dict[str, str]]] = None

    # ------------------------------------------------------------------
    # Registration (routes to the owning shard)
    # ------------------------------------------------------------------

    def shard_for(self, title: str) -> int:
        """The shard index owning ``title``."""
        return shard_of(title, self.shard_count)

    def register(
        self,
        kind: str,
        title: str,
        annotations: Sequence[Tuple[str, Any]],
        links: Sequence[str] = (),
        description: str = "",
        author: str = "",
    ) -> None:
        """Create or update one metadata page on its owning shard."""
        self.shards[self.shard_for(title)].register(
            kind,
            title,
            annotations,
            links=links,
            description=description,
            author=author,
        )

    def register_record(
        self, kind: str, record: Dict[str, Any], links: Sequence[str] = ()
    ) -> None:
        """Register a typed record, routing the page to its owning shard."""
        typed = record_class_for(kind).from_record(record)
        self.register(kind, typed.title, typed.annotations(), links=links)

    @classmethod
    def from_corpus(cls, corpus, shard_count: int = 4) -> "ShardedRepository":
        """Load a synthetic corpus, mirroring the unsharded bulk load."""
        repo = cls(shard_count=shard_count)
        extra_links: Dict[str, List[str]] = {}
        for source, target in corpus.page_links:
            extra_links.setdefault(source, []).append(target)
        for kind in KIND_ORDER:
            for record in corpus.records_of(kind):
                repo.register_record(
                    kind, record, links=extra_links.get(record["title"], ())
                )
        return repo

    # ------------------------------------------------------------------
    # The unsharded SMR facade
    # ------------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return sum(shard.page_count for shard in self.shards)

    @property
    def mutation_count(self) -> int:
        """Sum of the shard mutation counters — monotone, like the original.

        Every write bumps exactly one shard's counter, so the sum only
        grows; generation-stamped caches (results, memos, rankings) work
        unchanged against it.
        """
        return sum(shard.mutation_count for shard in self.shards)

    def kind_of(self, title: str) -> str:
        """Record kind of the page, from its owning shard."""
        return self.shards[self.shard_for(title)].kind_of(title)

    def kind_map(self) -> Dict[str, str]:
        """One federated-read-locked snapshot of title-key -> kind."""
        merged: Dict[str, str] = {}
        with self.lock.read():
            for shard in self.shards:
                merged.update(shard.kind_map())
        return merged

    def titles(self, kind: Optional[str] = None) -> List[str]:
        """Global titles, optionally restricted to one record kind."""
        with self.lock.read():
            titles = self.wiki.titles()
            if kind is None:
                return titles
            wanted = kind.lower()
            kinds: Dict[str, str] = {}
            for shard in self.shards:
                kinds.update(shard.kind_map())
            return [t for t in titles if kinds[t.strip().lower()] == wanted]

    def annotations(self, title: str) -> List[Tuple[str, Any]]:
        """Semantic annotations of the page, from its owning shard."""
        return self.shards[self.shard_for(title)].annotations(title)

    def property_names(self) -> List[str]:
        """Sorted union of semantic property names across shards."""
        with self.lock.read():
            return self.wiki.property_names()

    def sql(self, query: str) -> ResultSet:
        """Run a federated SELECT under the federated read lock."""
        with self.lock.read():
            return self.db.execute(query)

    def rdf_graph(self) -> Graph:
        """The global RDF export, memoized per (global) generation."""
        generation = self.mutation_count
        memo = self._global_rdf
        if memo is not None and memo[0] == generation:
            return memo[1]
        with self._rdf_lock:
            memo = self._global_rdf
            if memo is not None and memo[0] == generation:
                return memo[1]
            with self.lock.read():
                graph = self.wiki.export_rdf()
            self._global_rdf = (generation, graph)
            return graph

    def sparql(self, query: str) -> SparqlResult:
        """Run SPARQL over the federation-wide RDF graph."""
        with self.lock.read():
            return SparqlEngine(self.rdf_graph()).query(query)

    def keyword_search(self, query: str, limit: Optional[int] = None) -> List[SearchHit]:
        """Merged-segment keyword search, byte-identical to one index."""
        with self.lock.read():
            return merged_search(
                [shard.text_index for shard in self.shards], query, limit=limit
            )

    # ------------------------------------------------------------------
    # Per-shard accessors (the fan-out cells' substrate)
    #
    # ``locked=False`` is the fork-snapshot mode: a process-pool worker
    # reads its frozen copy without touching any lock (the copied locks
    # may be unreleasable there); repro.shard.fanout guards those reads
    # with the cell's generation stamp instead.
    # ------------------------------------------------------------------

    def shard_generation(self, index: int) -> int:
        """Shard ``index``'s own mutation counter."""
        return self.shards[index].mutation_count

    def shard_keyword_segment(
        self, index: int, terms: Sequence[str], locked: bool = True
    ) -> tuple:
        """One shard's postings snapshot for already-analyzed ``terms``.

        Returns ``(document_count, total_token_count, postings, lengths)``
        — the exact integers :func:`merged_search` needs to reproduce
        global BM25 scores bitwise.
        """
        shard = self.shards[index]
        if locked:
            with shard.lock.read():
                return _keyword_segment(shard.text_index, terms)
        return _keyword_segment(shard.text_index, terms)

    def shard_filter_matches(
        self, index: int, flt: Any, locked: bool = True
    ) -> tuple:
        """One shard's property-filter partial.

        Mapped properties probe the shard's SQL tables per kind (same
        condition rendering as the unsharded engine) and return
        ``("sql", matches, errors_by_kind)``; unmapped properties run
        the engine's per-subject SPARQL shape over the shard's RDF
        export and return ``("sparql", subject_iri_values, {})``.
        """
        from repro.core.engine import _sql_condition

        mapped = [
            kind
            for kind in self.mapping.kinds
            if self.mapping.column_for_property(kind, flt.prop) is not None
        ]
        shard = self.shards[index]
        if mapped:
            matches: Set[str] = set()
            errors: Dict[str, str] = {}
            for kind in mapped:
                column = self.mapping.column_for_property(kind, flt.prop)
                condition = _sql_condition(column, flt)
                statement = f"SELECT title FROM {kind} WHERE {condition}"
                try:
                    if locked:
                        result = shard.sql(statement)
                    else:
                        result = shard.db.execute(statement)
                except RelationalError as exc:
                    errors[kind] = str(exc)
                    continue
                matches.update(row[0] for row in result)
            return ("sql", matches, errors)
        return ("sparql", self._shard_sparql_subjects(index, flt, locked=locked), {})

    def _shard_sparql_subjects(
        self, index: int, flt: Any, locked: bool = True
    ) -> Set[str]:
        from repro.core.engine import _sparql_condition

        prop_local = flt.prop.strip().lower().replace(" ", "_")
        condition = _sparql_condition(flt)
        query = (
            "PREFIX prop: <http://repro.example.org/property/> "
            f"SELECT ?s WHERE {{ ?s prop:{prop_local} ?v . FILTER({condition}) }}"
        )
        graph = self.shard_rdf_graph(index, locked=locked)
        result = SparqlEngine(graph).query(query)
        return {
            term.value
            for term in result.column("s")
            if getattr(term, "value", None) is not None
        }

    def shard_rdf_graph(self, index: int, locked: bool = True) -> Graph:
        """Shard ``index``'s RDF export, memoized per *global* generation.

        Global, not per-shard: the resolver is the federation, so a page
        registered on any other shard can turn this shard's Literal
        objects into page IRIs.
        """
        generation = self.mutation_count
        memo = self._shard_rdf[index]
        if memo is not None and memo[0] == generation:
            return memo[1]
        if not locked:
            graph = self._build_shard_rdf(index)
            self._shard_rdf[index] = (generation, graph)
            return graph
        with self._rdf_lock:
            memo = self._shard_rdf[index]
            if memo is not None and memo[0] == generation:
                return memo[1]
            with self.lock.read():
                graph = self._build_shard_rdf(index)
            self._shard_rdf[index] = (generation, graph)
            return graph

    def _build_shard_rdf(self, index: int) -> Graph:
        graph = Graph()
        shard = self.shards[index]
        for title in shard.wiki.titles():
            shard.wiki.export_page_rdf(graph, title, resolver=self.wiki)
        return graph

    def shard_bbox_titles(
        self,
        index: int,
        box: Tuple[float, float, float, float],
        use_index: bool = True,
        locked: bool = True,
    ) -> Set[str]:
        """Titles of shard ``index``'s pages inside ``(south, north, west, east)``.

        The R-tree probe and the linear scan share the same inclusive
        axis test, so ``use_index`` changes the access path only —
        exactly like the unsharded engine's ``spatial_index`` flag.
        """
        south, north, west, east = box
        shard = self.shards[index]
        if use_index:
            rtree = self._shard_spatial_index(
                index, shard.mutation_count, locked=locked
            )
            return set(rtree.box(south, north, west, east))
        if locked:
            with shard.lock.read():
                return _bbox_scan(shard.wiki, south, north, west, east)
        return _bbox_scan(shard.wiki, south, north, west, east)

    def _shard_spatial_index(self, index: int, generation: int, locked: bool = True):
        memo = self._shard_spatial[index]
        if memo is not None and memo[0] == generation:
            return memo[1]
        if not locked:
            rtree = _build_spatial_index(self.shards[index].wiki, index)
            self._shard_spatial[index] = (generation, rtree)
            return rtree
        with self._spatial_lock:
            memo = self._shard_spatial[index]
            if memo is not None and memo[0] == generation:
                return memo[1]
            shard = self.shards[index]
            with shard.lock.read():
                rtree = _build_spatial_index(shard.wiki, index)
            self._shard_spatial[index] = (generation, rtree)
            return rtree

    def iri_title_map(self) -> Dict[str, str]:
        """IRI value -> title over all shards, memoized per generation."""
        from repro.wiki.site import title_to_iri

        generation = self.mutation_count
        memo = self._iri_memo
        if memo is not None and memo[0] == generation:
            return memo[1]
        with self._iri_lock:
            memo = self._iri_memo
            if memo is not None and memo[0] == generation:
                return memo[1]
            mapping = {title_to_iri(title).value: title for title in self.titles()}
            self._iri_memo = (generation, mapping)
            return mapping

    # ------------------------------------------------------------------
    # Diagnostics (``/api/stats``, ``/healthz``, the dashboard)
    # ------------------------------------------------------------------

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard size and generation counters."""
        return [
            {
                "shard": i,
                "pages": shard.page_count,
                "mutations": shard.mutation_count,
                "documents": shard.text_index.document_count,
                "terms": shard.text_index.term_count,
            }
            for i, shard in enumerate(self.shards)
        ]

    def shard_spatial_info(self) -> List[Dict[str, Any]]:
        """Per-shard R-tree memo state (mirrors ``spatial_index_info``)."""
        info: List[Dict[str, Any]] = []
        for i, shard in enumerate(self.shards):
            memo = self._shard_spatial[i]
            entry: Dict[str, Any] = {
                "shard": i,
                "generation": memo[0] if memo is not None else None,
                "current_generation": shard.mutation_count,
            }
            if memo is not None:
                entry.update(memo[1].statistics())
            info.append(entry)
        return info

    def __repr__(self) -> str:
        return (
            f"ShardedRepository(shards={self.shard_count}, pages={self.page_count})"
        )


# ----------------------------------------------------------------------
# Lock-free per-shard kernels (callers hold the shard lock, or read a
# frozen fork snapshot)
# ----------------------------------------------------------------------


def _keyword_segment(index: InvertedIndex, terms: Sequence[str]) -> tuple:
    postings = {term: dict(index.term_documents(term)) for term in terms}
    lengths: Dict[str, int] = {}
    for term_postings in postings.values():
        for doc_id in term_postings:
            if doc_id not in lengths:
                lengths[doc_id] = index.doc_length(doc_id)
    return (index.document_count, index.total_token_count, postings, lengths)


def _location_of(wiki, title: str):
    """Replicates ``AdvancedSearchEngine._parse_location`` exactly."""
    from repro.geo.point import GeoPoint

    annotations = dict(
        (prop.lower(), value) for prop, value in wiki.annotations(title)
    )
    lat = annotations.get("latitude")
    lon = annotations.get("longitude")
    if isinstance(lat, (int, float)) and isinstance(lon, (int, float)):
        try:
            return GeoPoint(float(lat), float(lon))
        except Exception:
            return None
    return None


def _bbox_scan(
    wiki, south: float, north: float, west: float, east: float
) -> Set[str]:
    matches: Set[str] = set()
    for title in wiki.titles():
        location = _location_of(wiki, title)
        if location is None:
            continue
        if south <= location.lat <= north and west <= location.lon <= east:
            matches.add(title)
    return matches


def _build_spatial_index(wiki, shard_index: int):
    from repro.relational.indexes import RTreeIndex

    rtree = RTreeIndex(
        f"shard{shard_index}_spatial", columns=("latitude", "longitude")
    )
    for title in wiki.titles():
        location = _location_of(wiki, title)
        if location is not None:
            rtree.insert((location.lat, location.lon), title)
    return rtree
