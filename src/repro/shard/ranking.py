"""Per-shard staleness accounting on top of the incremental ranker.

The sharded repository keeps one mutation counter per shard, and the
Gauss–Southwell warm start races a different write stream on each —
so freshness is a per-shard quantity. :class:`ShardedPageRankRanker`
computes the *same* scores as the base ranker (the federated wiki view
reproduces the global link graphs bitwise) but records, per shard:

- which generation the current ranking was built at
  (``ranking_shard_staleness_generations{shard=...}``), and
- how many of the incremental refresh's dirty pages it owns
  (``ranking_shard_dirty_pages{shard=...}``),

feeding the sampler / SLO / dashboard stack the per-shard lag the
streaming-ingestion benchmark gates on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.ranking import PageRankRanker
from repro.shard.fanout import shard_of


class ShardedPageRankRanker(PageRankRanker):
    """A :class:`PageRankRanker` that attributes staleness to shards."""

    def __init__(self, smr: Any, **kwargs: Any):
        super().__init__(smr, **kwargs)
        #: Per-shard mutation counters observed when the current ranking
        #: was (re)built; ``None`` until the first build.
        self._built_at_shards: Optional[List[int]] = None

    def _recompute(self) -> None:
        # Captured *before* the build (conservative: if a shard mutates
        # mid-build, its lag reads high, never stale-but-zero).
        self._built_at_shards = [
            shard.mutation_count for shard in self.smr.shards
        ]
        super()._recompute()

    def _note_dirty(self, dirty: np.ndarray, titles: List[str]) -> None:
        registry = obs.get_registry()
        if not registry.enabled:
            return
        count = self.smr.shard_count
        owned = [0] * count
        for row in dirty:
            owned[shard_of(titles[int(row)], count)] += 1
        gauge = registry.gauge(
            "ranking_shard_dirty_pages",
            "Dirty pages the last incremental refresh queued, per owning shard.",
            labels=("shard",),
        )
        for index, pages in enumerate(owned):
            gauge.labels(str(index)).set(float(pages))

    def shard_staleness(self) -> List[Dict[str, Any]]:
        """Per-shard generation lag of the current ranking."""
        built = self._built_at_shards
        report: List[Dict[str, Any]] = []
        for index, shard in enumerate(self.smr.shards):
            current = shard.mutation_count
            built_at = None if built is None else built[index]
            report.append(
                {
                    "shard": index,
                    "built_at_mutation": built_at,
                    "mutation_count": current,
                    "lag": current if built_at is None else max(0, current - built_at),
                }
            )
        return report

    def record_staleness(self) -> int:
        lag = super().record_staleness()
        registry = obs.get_registry()
        if registry.enabled:
            gauge = registry.gauge(
                "ranking_shard_staleness_generations",
                "Mutations applied to each shard since its ranking snapshot.",
                labels=("shard",),
            )
            for entry in self.shard_staleness():
                gauge.labels(str(entry["shard"])).set(float(entry["lag"]))
        return lag

    def freshness(self) -> Dict[str, Any]:
        report = super().freshness()
        report["shards"] = self.shard_staleness()
        return report
