"""Hash-sharded repository federation behind one query surface.

The paper's Fig. 6/7 workload bulk-loads sensor-metadata pages into one
repository and queries them through one search interface; this package
is the scaling step the ROADMAP names on top of it. Pages are
partitioned by a hash of their canonical title into N independent
:class:`~repro.smr.repository.SensorMetadataRepository` shards — each
with its own rwlock, inverted-index segment, relational tables,
RDF export, R-tree and incremental-PageRank dirty set — and
:class:`~repro.shard.repository.ShardedRepository` /
:class:`~repro.shard.engine.ShardedSearchEngine` federate them back into
exactly the facade the unsharded engine speaks, with results asserted
*byte-identical* to a single global repository. Constraint evaluation
fans out per (constraint, shard) through ``repro.perf.pool`` — a
coarse-grained, picklable unit of work the process backend can finally
chew on — and per-shard candidates merge through the engine's existing
top-k heap. This is the federation move of the "Virtual Internet
Repositories" paper: many repositories, one query surface, merged at
the edge.
"""

from repro.shard.engine import ShardedSearchEngine
from repro.shard.fanout import shard_of
from repro.shard.ranking import ShardedPageRankRanker
from repro.shard.repository import ShardedRepository

__all__ = [
    "ShardedRepository",
    "ShardedSearchEngine",
    "ShardedPageRankRanker",
    "shard_of",
]
