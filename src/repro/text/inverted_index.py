"""Ranked keyword search over documents (the "basic search" the paper
extends).

Documents are added as ``(doc_id, text)``; tokens are stemmed and
stopword-filtered before indexing. Queries run through the same pipeline,
then candidate documents are scored with either TF-IDF cosine or Okapi
BM25 — BM25 is the default because short metadata pages benefit from its
length normalization.

Invariants the rest of the system leans on:

- **Write-through freshness, not generation stamping.** The index is
  mutated inside the same :meth:`repro.smr.SensorMetadataRepository.
  register` call that bumps the SMR generation, *before* the write
  returns — so unlike the query-result cache (which stamps entries and
  invalidates lazily), an ``InvertedIndexScan`` can never observe a page
  the SMR doesn't have, or miss one it does. There is no rebuild step to
  forget.
- **Re-add replaces.** ``add`` on an existing ``doc_id`` removes the old
  postings first; re-registering a page never double-counts terms, and
  ``remove`` drops emptied postings lists so ``term_count`` reflects
  live terms only.
- **Symmetric analysis.** Queries pass through the exact tokenize →
  stopword → Porter-stem pipeline documents were indexed under
  (:func:`_analyze` both ways); a term that indexes differently than it
  queries can't exist.
- **Deterministic ranking.** Ties in score break on ``doc_id``, so equal
  corpora return identical hit orderings across runs and backends — the
  property the engine's result cache and the differential tests rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import ReproError
from repro.text.stemmer import porter_stem
from repro.text.stopwords import is_stopword
from repro.text.tokenize import tokenize

_BM25_K1 = 1.5
_BM25_B = 0.75


@dataclass(frozen=True)
class SearchHit:
    """One ranked result: the document id and its relevance score."""

    doc_id: str
    score: float


def _analyze(text: str) -> List[str]:
    """Tokenize, drop stopwords, stem — the shared indexing pipeline."""
    return [porter_stem(token) for token in tokenize(text) if not is_stopword(token)]


class InvertedIndex:
    """An in-memory inverted index with BM25 / TF-IDF scoring."""

    def __init__(self):
        # term -> doc_id -> term frequency
        self._postings: Dict[str, Dict[str, int]] = {}
        self._doc_lengths: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add(self, doc_id: str, text: str) -> None:
        """Index ``text`` under ``doc_id``; re-adding replaces the document."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        terms = _analyze(text)
        self._doc_lengths[doc_id] = len(terms)
        for term in terms:
            self._postings.setdefault(term, {})
            self._postings[term][doc_id] = self._postings[term].get(doc_id, 0) + 1

    def remove(self, doc_id: str) -> None:
        """Drop a document from the index (no-op if absent)."""
        if doc_id not in self._doc_lengths:
            return
        del self._doc_lengths[doc_id]
        empty_terms = []
        for term, postings in self._postings.items():
            postings.pop(doc_id, None)
            if not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def term_count(self) -> int:
        return len(self._postings)

    def document_frequency(self, term: str) -> int:
        """Documents containing ``term`` (after analysis of the term)."""
        analyzed = _analyze(term)
        if not analyzed:
            return 0
        return len(self._postings.get(analyzed[0], {}))

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self,
        query: str,
        limit: Optional[int] = None,
        scoring: str = "bm25",
        require_all: bool = False,
    ) -> List[SearchHit]:
        """Return documents ranked by relevance to ``query``.

        ``require_all=True`` keeps only documents containing every query
        term (AND semantics); the default is OR with ranking.
        """
        if scoring not in ("bm25", "tfidf"):
            raise ReproError(f"unknown scoring {scoring!r}; use 'bm25' or 'tfidf'")
        terms = _analyze(query)
        if not terms:
            return []
        candidates: Set[str] = set()
        per_term_docs = [set(self._postings.get(term, {})) for term in terms]
        if require_all:
            candidates = set.intersection(*per_term_docs) if per_term_docs else set()
        else:
            for docs in per_term_docs:
                candidates |= docs
        if not candidates:
            return []
        scorer = self._bm25 if scoring == "bm25" else self._tfidf_score
        hits = [SearchHit(doc_id, scorer(terms, doc_id)) for doc_id in candidates]
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return hits[:limit] if limit is not None else hits

    def _idf(self, term: str) -> float:
        df = len(self._postings.get(term, {}))
        n = self.document_count
        # BM25+ style floor keeps idf positive even for very common terms.
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5)) if df else 0.0

    def _bm25(self, terms: List[str], doc_id: str) -> float:
        avg_len = sum(self._doc_lengths.values()) / max(1, self.document_count)
        length = self._doc_lengths[doc_id]
        score = 0.0
        for term in terms:
            tf = self._postings.get(term, {}).get(doc_id, 0)
            if tf == 0:
                continue
            idf = self._idf(term)
            denom = tf + _BM25_K1 * (1 - _BM25_B + _BM25_B * length / max(avg_len, 1e-9))
            score += idf * tf * (_BM25_K1 + 1) / denom
        return score

    def _tfidf_score(self, terms: List[str], doc_id: str) -> float:
        length = max(1, self._doc_lengths[doc_id])
        score = 0.0
        for term in terms:
            tf = self._postings.get(term, {}).get(doc_id, 0)
            if tf == 0:
                continue
            score += (tf / length) * self._idf(term)
        return score
