"""Ranked keyword search over documents (the "basic search" the paper
extends).

Documents are added as ``(doc_id, text)``; tokens are stemmed and
stopword-filtered before indexing. Queries run through the same pipeline,
then candidate documents are scored with either TF-IDF cosine or Okapi
BM25 — BM25 is the default because short metadata pages benefit from its
length normalization.

Invariants the rest of the system leans on:

- **Write-through freshness, not generation stamping.** The index is
  mutated inside the same :meth:`repro.smr.SensorMetadataRepository.
  register` call that bumps the SMR generation, *before* the write
  returns — so unlike the query-result cache (which stamps entries and
  invalidates lazily), an ``InvertedIndexScan`` can never observe a page
  the SMR doesn't have, or miss one it does. There is no rebuild step to
  forget.
- **Re-add replaces.** ``add`` on an existing ``doc_id`` removes the old
  postings first; re-registering a page never double-counts terms, and
  ``remove`` drops emptied postings lists so ``term_count`` reflects
  live terms only.
- **Symmetric analysis.** Queries pass through the exact tokenize →
  stopword → Porter-stem pipeline documents were indexed under
  (:func:`analyze` both ways); a term that indexes differently than it
  queries can't exist.
- **Deterministic ranking.** Ties in score break on ``doc_id``, so equal
  corpora return identical hit orderings across runs and backends — the
  property the engine's result cache and the differential tests rely on.
- **Segment-mergeable scoring.** All corpus-level statistics BM25 and
  TF-IDF consume (document frequency, document count, total token count)
  are integers, so :func:`merged_search` over disjoint index segments
  sums them exactly and reproduces single-index scores *bitwise* — the
  property ``repro.shard`` leans on for byte-identical sharded search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import ReproError
from repro.text.stemmer import porter_stem
from repro.text.stopwords import is_stopword
from repro.text.tokenize import tokenize

_BM25_K1 = 1.5
_BM25_B = 0.75


@dataclass(frozen=True)
class SearchHit:
    """One ranked result: the document id and its relevance score."""

    doc_id: str
    score: float


def analyze(text: str) -> List[str]:
    """Tokenize, drop stopwords, stem — the shared indexing pipeline."""
    return [porter_stem(token) for token in tokenize(text) if not is_stopword(token)]


# Backwards-compatible private alias (pre-sharding callers import this name).
_analyze = analyze


def bm25_idf(df: int, n: int) -> float:
    """BM25 idf for a term with document frequency ``df`` in ``n`` docs.

    BM25+ style floor keeps idf positive even for very common terms. Both
    inputs are exact integers, so per-segment sums feed this identically
    to a single global index.
    """
    return math.log(1.0 + (n - df + 0.5) / (df + 0.5)) if df else 0.0


def bm25_term_score(tf: int, idf: float, length: int, avg_len: float) -> float:
    """One term's Okapi BM25 contribution for a document of ``length`` tokens."""
    denom = tf + _BM25_K1 * (1 - _BM25_B + _BM25_B * length / max(avg_len, 1e-9))
    return idf * tf * (_BM25_K1 + 1) / denom


def tfidf_term_score(tf: int, idf: float, length: int) -> float:
    """One term's TF-IDF contribution (length-normalized term frequency)."""
    return (tf / max(1, length)) * idf


class InvertedIndex:
    """An in-memory inverted index with BM25 / TF-IDF scoring."""

    def __init__(self):
        # term -> doc_id -> term frequency
        self._postings: Dict[str, Dict[str, int]] = {}
        self._doc_lengths: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add(self, doc_id: str, text: str) -> None:
        """Index ``text`` under ``doc_id``; re-adding replaces the document."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        terms = analyze(text)
        self._doc_lengths[doc_id] = len(terms)
        for term in terms:
            self._postings.setdefault(term, {})
            self._postings[term][doc_id] = self._postings[term].get(doc_id, 0) + 1

    def remove(self, doc_id: str) -> None:
        """Drop a document from the index (no-op if absent)."""
        if doc_id not in self._doc_lengths:
            return
        del self._doc_lengths[doc_id]
        empty_terms = []
        for term, postings in self._postings.items():
            postings.pop(doc_id, None)
            if not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def term_count(self) -> int:
        return len(self._postings)

    @property
    def total_token_count(self) -> int:
        """Sum of indexed document lengths (the BM25 average's numerator)."""
        return sum(self._doc_lengths.values())

    def document_frequency(self, term: str) -> int:
        """Documents containing ``term`` (after analysis of the term)."""
        analyzed = analyze(term)
        if not analyzed:
            return 0
        return len(self._postings.get(analyzed[0], {}))

    # ------------------------------------------------------------------
    # Segment accessors (used by merged_search / repro.shard)
    # ------------------------------------------------------------------

    def term_documents(self, term: str) -> Dict[str, int]:
        """Postings of an *already analyzed* term: doc_id -> tf.

        Returns the live mapping for speed; callers must treat it as
        read-only and hold whatever lock guards this segment.
        """
        return self._postings.get(term, {})

    def doc_length(self, doc_id: str) -> int:
        """Token count of ``doc_id`` (0 when the document is absent)."""
        return self._doc_lengths.get(doc_id, 0)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self,
        query: str,
        limit: Optional[int] = None,
        scoring: str = "bm25",
        require_all: bool = False,
    ) -> List[SearchHit]:
        """Return documents ranked by relevance to ``query``.

        ``require_all=True`` keeps only documents containing every query
        term (AND semantics); the default is OR with ranking.
        """
        if scoring not in ("bm25", "tfidf"):
            raise ReproError(f"unknown scoring {scoring!r}; use 'bm25' or 'tfidf'")
        terms = analyze(query)
        if not terms:
            return []
        candidates: Set[str] = set()
        per_term_docs = [set(self._postings.get(term, {})) for term in terms]
        if require_all:
            candidates = set.intersection(*per_term_docs) if per_term_docs else set()
        else:
            for docs in per_term_docs:
                candidates |= docs
        if not candidates:
            return []
        scorer = self._bm25 if scoring == "bm25" else self._tfidf_score
        hits = [SearchHit(doc_id, scorer(terms, doc_id)) for doc_id in candidates]
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return hits[:limit] if limit is not None else hits

    def _idf(self, term: str) -> float:
        return bm25_idf(len(self._postings.get(term, {})), self.document_count)

    def _bm25(self, terms: List[str], doc_id: str) -> float:
        avg_len = self.total_token_count / max(1, self.document_count)
        length = self._doc_lengths[doc_id]
        score = 0.0
        for term in terms:
            tf = self._postings.get(term, {}).get(doc_id, 0)
            if tf == 0:
                continue
            score += bm25_term_score(tf, self._idf(term), length, avg_len)
        return score

    def _tfidf_score(self, terms: List[str], doc_id: str) -> float:
        length = self._doc_lengths[doc_id]
        score = 0.0
        for term in terms:
            tf = self._postings.get(term, {}).get(doc_id, 0)
            if tf == 0:
                continue
            score += tfidf_term_score(tf, self._idf(term), length)
        return score


def merged_search(
    indexes: Sequence[InvertedIndex],
    query: str,
    limit: Optional[int] = None,
    scoring: str = "bm25",
    require_all: bool = False,
) -> List[SearchHit]:
    """Search several disjoint index segments as one logical index.

    Documents must be partitioned across ``indexes`` (no ``doc_id`` lives
    in two segments — the ``repro.shard`` routing guarantees this). Global
    statistics are recovered by *integer* summation — document frequency
    is the size of the unioned postings, document count and total token
    count are per-segment sums — and per-term scores reuse the exact
    expressions of :meth:`InvertedIndex.search`, so the merged hit list is
    byte-identical to indexing the union in one segment.
    """
    if scoring not in ("bm25", "tfidf"):
        raise ReproError(f"unknown scoring {scoring!r}; use 'bm25' or 'tfidf'")
    terms = analyze(query)
    if not terms:
        return []
    n = sum(index.document_count for index in indexes)
    total_tokens = sum(index.total_token_count for index in indexes)
    avg_len = total_tokens / max(1, n)
    merged: Dict[str, Dict[str, int]] = {}
    for term in terms:
        if term in merged:
            continue
        postings: Dict[str, int] = {}
        for index in indexes:
            postings.update(index.term_documents(term))
        merged[term] = postings
    per_term_docs = [set(merged[term]) for term in terms]
    if require_all:
        candidates = set.intersection(*per_term_docs) if per_term_docs else set()
    else:
        candidates = set()
        for docs in per_term_docs:
            candidates |= docs
    if not candidates:
        return []
    lengths: Dict[str, int] = {}
    for doc_id in candidates:
        for index in indexes:
            if doc_id in index:
                lengths[doc_id] = index.doc_length(doc_id)
                break
    idf_of = {term: bm25_idf(len(postings), n) for term, postings in merged.items()}
    hits = []
    for doc_id in candidates:
        length = lengths.get(doc_id, 0)
        score = 0.0
        for term in terms:
            tf = merged[term].get(doc_id, 0)
            if tf == 0:
                continue
            if scoring == "bm25":
                score += bm25_term_score(tf, idf_of[term], length, avg_len)
            else:
                score += tfidf_term_score(tf, idf_of[term], length)
        hits.append(SearchHit(doc_id, score))
    hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
    return hits[:limit] if limit is not None else hits


def merge_hits(
    hit_lists: Iterable[List[SearchHit]], limit: Optional[int] = None
) -> List[SearchHit]:
    """Merge pre-scored per-segment hit lists into one ranked list.

    Only valid when every segment scored with *global* statistics (e.g.
    lists produced by :func:`merged_search` on sub-federations); scores
    are taken as-is and re-sorted with the standard tie-break.
    """
    hits = [hit for hits in hit_lists for hit in hits]
    hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
    return hits[:limit] if limit is not None else hits
