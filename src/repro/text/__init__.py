"""Text and information-retrieval substrate.

The advanced search interface needs keyword search over page text and
metadata values, autocomplete for the query form, and cosine similarity
between tag vectors (Section IV). This package supplies those pieces:

- :mod:`repro.text.tokenize` — tokenizer and n-gram helpers;
- :mod:`repro.text.stopwords` — the English stopword list;
- :mod:`repro.text.stemmer` — a from-scratch Porter stemmer;
- :mod:`repro.text.tfidf` — TF-IDF vectors and cosine similarity;
- :mod:`repro.text.inverted_index` — ranked keyword search (TF-IDF and
  BM25 scoring);
- :mod:`repro.text.trie` — prefix trie powering autocomplete.
"""

from repro.text.tokenize import tokenize, normalize_token
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.stemmer import porter_stem
from repro.text.tfidf import TfidfVectorizer, cosine_similarity
from repro.text.fuzzy import levenshtein, suggest
from repro.text.inverted_index import InvertedIndex, SearchHit
from repro.text.snippet import Snippet, best_snippet
from repro.text.trie import Trie

__all__ = [
    "tokenize",
    "normalize_token",
    "STOPWORDS",
    "is_stopword",
    "porter_stem",
    "TfidfVectorizer",
    "cosine_similarity",
    "InvertedIndex",
    "SearchHit",
    "Snippet",
    "best_snippet",
    "levenshtein",
    "suggest",
    "Trie",
]
