"""Tokenization for metadata text.

Sensor metadata mixes prose with identifiers ("WAN-007", "SN12345",
"wind_speed"), so the tokenizer keeps alphanumeric runs together,
splits on everything else, and lower-cases. Numbers survive as tokens —
searching for a serial number must work.
"""

from __future__ import annotations

import re
from typing import Iterable, List

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def normalize_token(token: str) -> str:
    """Lower-case and strip a single token candidate."""
    return token.strip().lower()


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lower-case alphanumeric tokens.

    >>> tokenize("Wind speed at WAN-007!")
    ['wind', 'speed', 'at', 'wan', '007']
    """
    return _TOKEN_RE.findall(text.lower())


def ngrams(tokens: Iterable[str], n: int) -> List[tuple]:
    """Return the ``n``-grams of a token sequence (empty if too short)."""
    tokens = list(tokens)
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
