"""English stopwords filtered out of keyword indexes and tag vocabularies.

A compact list tuned for metadata text: grammatical glue words only —
domain words like "station" or "data" are deliberately *not* stopwords,
because users search for them.
"""

from __future__ import annotations

STOPWORDS = frozenset(
    """
    a about above after again all also am an and any are as at be because
    been before being below between both but by can did do does doing down
    during each few for from further had has have having he her here hers
    him his how i if in into is it its itself just me more most my no nor
    not now of off on once only or other our ours out over own same she so
    some such than that the their theirs them then there these they this
    those through to too under until up very was we were what when where
    which while who whom why will with you your yours
    """.split()
)


def is_stopword(token: str) -> bool:
    """Return True when ``token`` (already lower-case) is a stopword."""
    return token in STOPWORDS
