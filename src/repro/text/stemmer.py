"""The Porter stemming algorithm (Porter, 1980), implemented from scratch.

Keyword search conflates "sensors"/"sensor", "measurements"/"measurement"
etc. through this stemmer. The implementation follows the original paper's
five steps and condition predicates (measure ``m``, ``*v*``, ``*d``,
``*o``); words of length <= 2 are returned unchanged, as Porter specifies.
"""

from __future__ import annotations

_VOWELS = set("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Return m, the number of VC sequences in ``stem``."""
    forms = []
    for i in range(len(stem)):
        is_c = _is_consonant(stem, i)
        if not forms or forms[-1] != is_c:
            forms.append(is_c)
    # forms is like [C, V, C, V, ...]; count V->C transitions.
    count = 0
    for i in range(1, len(forms)):
        if forms[i] and not forms[i - 1]:
            count += 1
    return count


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """*o: stem ends CVC where the final C is not w, x or y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str, min_measure: int) -> str | None:
    """If ``word`` ends with ``suffix`` and the stem has measure > min, replace."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word  # matched but condition failed: stop scanning this step


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    matched = None
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        matched = word[:-2]
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        matched = word[:-3]
    if matched is None:
        return word
    if matched.endswith(("at", "bl", "iz")):
        return matched + "e"
    if _ends_double_consonant(matched) and matched[-1] not in "lsz":
        return matched[:-1]
    if _measure(matched) == 1 and _ends_cvc(matched):
        return matched + "e"
    return matched


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2 = [
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
]

_STEP3 = [
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
]

_STEP4 = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _apply_rules(word: str, rules, min_measure: int = 0) -> str:
    for suffix, replacement in rules:
        result = _replace_suffix(word, suffix, replacement, min_measure)
        if result is not None:
            return result
    return word


def _step4(word: str) -> str:
    for suffix in _STEP4:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    # (m>1 and (*S or *T)) ION
    if word.endswith("ion"):
        stem = word[:-3]
        if _measure(stem) > 1 and stem and stem[-1] in "st":
            return stem
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1:
            return stem
        if m == 1 and not _ends_cvc(stem):
            return stem
    return word


def _step5b(word: str) -> str:
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        return word[:-1]
    return word


def porter_stem(word: str) -> str:
    """Return the Porter stem of ``word`` (assumed lower-case).

    >>> porter_stem("measurements")
    'measur'
    >>> porter_stem("sensors")
    'sensor'
    """
    if len(word) <= 2:
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _apply_rules(word, _STEP2)
    word = _apply_rules(word, _STEP3)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word
