"""TF-IDF vectors and cosine similarity.

Used twice in the system: ranking keyword matches in the inverted index
and — centrally for Section IV — measuring similarity between tags, where
each tag's "document" is the multiset of pages it annotates and two tags
are considered similar above the paper's 50 % cosine threshold.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import ReproError

Vector = Dict[str, float]


def cosine_similarity(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Return the cosine of two sparse vectors (0.0 when either is empty).

    The result is clamped to [0, 1] for non-negative inputs; negative
    components are allowed and can push it to [-1, 1].
    """
    if not a or not b:
        return 0.0
    # Iterate over the smaller dict for the dot product.
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    dot = sum(value * large.get(key, 0.0) for key, value in small.items())
    norm_a = math.sqrt(sum(value * value for value in a.values()))
    norm_b = math.sqrt(sum(value * value for value in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


class TfidfVectorizer:
    """Fit on a corpus of token lists; transform documents to TF-IDF dicts.

    IDF uses the smoothed form ``log((1 + N) / (1 + df)) + 1`` so terms
    present in every document keep a small positive weight instead of
    vanishing (metadata corpora are tiny; exact-zero IDF hurts recall).
    """

    def __init__(self):
        self._idf: Dict[str, float] = {}
        self._fitted = False

    @property
    def vocabulary(self) -> List[str]:
        """The fitted vocabulary, sorted."""
        self._require_fitted()
        return sorted(self._idf)

    def fit(self, documents: Iterable[Sequence[str]]) -> "TfidfVectorizer":
        """Learn IDF weights from an iterable of token sequences."""
        doc_freq: Dict[str, int] = {}
        count = 0
        for tokens in documents:
            count += 1
            for term in set(tokens):
                doc_freq[term] = doc_freq.get(term, 0) + 1
        if count == 0:
            raise ReproError("cannot fit a TF-IDF vectorizer on an empty corpus")
        self._idf = {
            term: math.log((1 + count) / (1 + df)) + 1.0 for term, df in doc_freq.items()
        }
        self._fitted = True
        return self

    def transform(self, tokens: Sequence[str]) -> Vector:
        """Return the TF-IDF vector of one document (unknown terms dropped)."""
        self._require_fitted()
        counts: Dict[str, int] = {}
        for term in tokens:
            counts[term] = counts.get(term, 0) + 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {
            term: (freq / total) * self._idf[term]
            for term, freq in counts.items()
            if term in self._idf
        }

    def fit_transform(self, documents: Sequence[Sequence[str]]) -> List[Vector]:
        """Fit on ``documents`` and return their vectors."""
        self.fit(documents)
        return [self.transform(doc) for doc in documents]

    def idf(self, term: str) -> float:
        """Return the IDF of ``term`` (0.0 for unseen terms)."""
        self._require_fitted()
        return self._idf.get(term, 0.0)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ReproError("vectorizer used before fit()")
