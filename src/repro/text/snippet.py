"""Result snippets: the best-matching window of a page's text, highlighted.

Search UIs show a fragment of each hit with the query terms emphasized.
:func:`best_snippet` slides a fixed-size token window over the text,
scores each window by the number of (stemmed) query-term occurrences plus
a small bonus for distinct terms, and returns the best window with
matching tokens wrapped in ``**`` markers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Set

from repro.text.stemmer import porter_stem
from repro.text.stopwords import is_stopword
from repro.text.tokenize import tokenize

_WORD_RE = re.compile(r"[A-Za-z0-9]+")


@dataclass(frozen=True)
class Snippet:
    """The chosen fragment plus its match statistics."""

    text: str
    matches: int
    distinct_terms: int

    def __str__(self) -> str:
        return self.text


def _query_stems(query: str) -> Set[str]:
    return {
        porter_stem(token) for token in tokenize(query) if not is_stopword(token)
    }


def best_snippet(text: str, query: str, window: int = 24) -> Snippet:
    """Return the best ``window``-word fragment of ``text`` for ``query``.

    Query terms are matched after stemming, so "measurement" highlights
    "measurements". If nothing matches, the snippet is the head of the
    text with zero matches.
    """
    stems = _query_stems(query)
    words = _WORD_RE.findall(text)
    if not words:
        return Snippet("", 0, 0)
    word_spans = list(_WORD_RE.finditer(text))
    hits = [porter_stem(word.lower()) in stems for word in words]
    best_start, best_score, best_distinct = 0, -1, 0
    for start in range(0, max(1, len(words) - window + 1)):
        segment = hits[start : start + window]
        count = sum(segment)
        distinct = len(
            {porter_stem(words[start + i].lower()) for i, hit in enumerate(segment) if hit}
        )
        score = count + 2 * distinct
        if score > best_score:
            best_start, best_score, best_distinct = start, score, distinct
    end_index = min(len(words), best_start + window) - 1
    span_start = word_spans[best_start].start()
    span_end = word_spans[end_index].end()
    fragment = text[span_start:span_end]
    highlighted = _highlight(fragment, stems)
    prefix = "…" if span_start > 0 else ""
    suffix = "…" if span_end < len(text) else ""
    matches = sum(hits[best_start : best_start + window])
    return Snippet(prefix + highlighted + suffix, matches, best_distinct)


def _highlight(fragment: str, stems: Set[str]) -> str:
    def mark(match: "re.Match[str]") -> str:
        word = match.group(0)
        if porter_stem(word.lower()) in stems:
            return f"**{word}**"
        return word

    return _WORD_RE.sub(mark, fragment)
