"""A prefix trie powering the query form's autocomplete (Fig. 7).

Entries carry a weight (typically page popularity or property frequency);
:meth:`Trie.complete` returns the heaviest completions of a prefix, which
is what the demo's autocomplete drop-downs display.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("children", "weight", "terminal")

    def __init__(self):
        self.children: Dict[str, _Node] = {}
        self.weight = 0.0
        self.terminal = False


class Trie:
    """A weighted prefix trie over lower-cased strings."""

    def __init__(self):
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, word: str) -> bool:
        node = self._find(word.lower())
        return node is not None and node.terminal

    def insert(self, word: str, weight: float = 1.0) -> None:
        """Insert ``word``; re-inserting accumulates weight."""
        node = self._root
        for ch in word.lower():
            node = node.children.setdefault(ch, _Node())
        if not node.terminal:
            self._size += 1
        node.terminal = True
        node.weight += weight

    def _find(self, prefix: str) -> Optional[_Node]:
        node = self._root
        for ch in prefix:
            node = node.children.get(ch)
            if node is None:
                return None
        return node

    def _walk(self, node: _Node, prefix: str) -> Iterator[Tuple[str, float]]:
        if node.terminal:
            yield prefix, node.weight
        for ch in sorted(node.children):
            yield from self._walk(node.children[ch], prefix + ch)

    def complete(self, prefix: str, limit: int = 10) -> List[str]:
        """Return up to ``limit`` completions of ``prefix``, heaviest first.

        Ties break alphabetically so results are deterministic.
        """
        start = self._find(prefix.lower())
        if start is None:
            return []
        matches = list(self._walk(start, prefix.lower()))
        matches.sort(key=lambda item: (-item[1], item[0]))
        return [word for word, _ in matches[:limit]]

    def words(self) -> List[str]:
        """Return every inserted word, alphabetical."""
        return [word for word, _ in self._walk(self._root, "")]
