"""Fuzzy matching: edit distance and "did you mean" suggestions.

When a search returns nothing, the interface proposes close spellings
from the live vocabulary (titles, property names, property values) —
ranked by edit distance, then by popularity weight.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError


def levenshtein(a: str, b: str, limit: Optional[int] = None) -> int:
    """Edit distance between ``a`` and ``b`` (insert/delete/substitute).

    With ``limit``, computation short-circuits and returns ``limit + 1``
    as soon as the distance provably exceeds it (banded algorithm).
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    if limit is not None and len(b) - len(a) > limit:
        return limit + 1
    previous = list(range(len(a) + 1))
    for j, ch_b in enumerate(b, start=1):
        current = [j]
        row_min = j
        for i, ch_a in enumerate(a, start=1):
            cost = 0 if ch_a == ch_b else 1
            value = min(previous[i] + 1, current[i - 1] + 1, previous[i - 1] + cost)
            current.append(value)
            row_min = min(row_min, value)
        if limit is not None and row_min > limit:
            return limit + 1
        previous = current
    return previous[-1]


def suggest(
    word: str,
    vocabulary: Sequence[str],
    max_distance: int = 2,
    limit: int = 5,
    weights: Optional[Dict[str, float]] = None,
) -> List[str]:
    """Closest vocabulary entries to ``word`` within ``max_distance``.

    Ranked by (distance, -weight, entry) so popular terms win ties;
    exact matches are excluded (nothing to suggest).
    """
    if max_distance < 0:
        raise ReproError(f"max_distance must be non-negative, got {max_distance}")
    word = word.lower()
    weights = weights or {}
    scored: List[Tuple[int, float, str]] = []
    for entry in vocabulary:
        lowered = entry.lower()
        if lowered == word:
            continue
        distance = levenshtein(word, lowered, limit=max_distance)
        if distance <= max_distance:
            scored.append((distance, -weights.get(entry, 0.0), entry))
    scored.sort()
    return [entry for _, _, entry in scored[:limit]]
