"""Tag workloads with planted cliques for the Fig. 5 study.

The paper's Fig. 5 shows the tag "Apple" belonging to two cliques, with the
cliques revealing the tag's senses. :func:`generate_tag_workload` plants a
configurable number of topic cliques (drawn from the Swiss-Experiment-like
vocabulary), makes some *bridge tags* members of two topics, and assigns
tags to pages with a Zipf-like frequency profile so that the Eq. 6 font
sizing has a realistic spread to work with.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.workloads import names


@dataclass
class TagWorkload:
    """Tag assignments plus ground truth about planted structure.

    Attributes
    ----------
    assignments:
        ``(page_title, tag)`` pairs; a tag may appear on many pages.
    topics:
        topic name -> list of member tags (the planted cliques).
    bridge_tags:
        Tags deliberately planted in two topics (the "Apple" analogs).
    """

    assignments: List[Tuple[str, str]] = field(default_factory=list)
    topics: Dict[str, List[str]] = field(default_factory=dict)
    bridge_tags: List[str] = field(default_factory=list)

    def tag_counts(self) -> Dict[str, int]:
        """Return tag -> number of pages it is assigned to."""
        counts: Dict[str, int] = {}
        for _, tag in self.assignments:
            counts[tag] = counts.get(tag, 0) + 1
        return counts

    @property
    def distinct_tags(self) -> List[str]:
        return sorted({tag for _, tag in self.assignments})


def generate_tag_workload(
    pages: int = 120,
    topics: int = 4,
    bridges: int = 2,
    tags_per_page: int = 4,
    seed: int = 7,
) -> TagWorkload:
    """Generate a tag workload with ``topics`` planted topic cliques.

    Pages are synthetic titles ``Page:0001`` …; each page draws most of its
    tags from a single topic (making within-topic tags co-occur, hence
    similar, hence clique-forming) plus an occasional cross-topic tag.
    ``bridges`` tags are shared between consecutive topic pairs.
    """
    if pages <= 0:
        raise ReproError(f"pages must be positive, got {pages}")
    topic_names = list(names.TAG_TOPICS)
    if not 1 <= topics <= len(topic_names):
        raise ReproError(f"topics must lie in 1..{len(topic_names)}, got {topics}")
    if bridges < 0 or (topics < 2 and bridges > 0):
        raise ReproError("bridge tags need at least two topics")
    rng = random.Random(seed)

    workload = TagWorkload()
    for topic in topic_names[:topics]:
        workload.topics[topic] = list(names.TAG_TOPICS[topic])

    # Plant bridge tags: members of two adjacent topics, like "Apple".
    chosen_topics = topic_names[:topics]
    for b in range(bridges):
        first = chosen_topics[b % topics]
        second = chosen_topics[(b + 1) % topics]
        bridge = f"bridge-{b + 1}"
        workload.topics[first].append(bridge)
        workload.topics[second].append(bridge)
        workload.bridge_tags.append(bridge)

    # Zipf-ish popularity inside each topic: earlier tags more popular.
    for page_index in range(pages):
        title = f"Page:{page_index + 1:04d}"
        topic = chosen_topics[page_index % topics]
        pool = workload.topics[topic]
        weights = [1.0 / (rank + 1) for rank in range(len(pool))]
        picked: set[str] = set()
        while len(picked) < min(tags_per_page, len(pool)):
            picked.add(rng.choices(pool, weights=weights, k=1)[0])
        # A cross-topic tag now and then keeps the graph connected.
        if rng.random() < 0.2:
            other = workload.topics[rng.choice(chosen_topics)]
            picked.add(rng.choice(other))
        for tag in sorted(picked):
            workload.assignments.append((title, tag))
    return workload
