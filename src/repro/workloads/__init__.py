"""Synthetic workloads standing in for the Swiss Experiment live data.

The paper runs over the Swiss Experiment Platform's proprietary corpus of
sensor-metadata wiki pages. We cannot ship that corpus, so this package
generates statistically similar substitutes under a seeded RNG:

- :mod:`repro.workloads.webgraphs` — random link structures (uniform,
  preferential-attachment/power-law, and paired web+semantic graphs) for
  the Fig. 3 PageRank study;
- :mod:`repro.workloads.generator` — a full synthetic SMR corpus
  (institutions, field sites, deployments, stations, sensors) with
  realistic property distributions, coordinates in the Swiss Alps, and
  inter-page links;
- :mod:`repro.workloads.tags` — tag assignment workloads with planted
  cliques for the Fig. 5 study;
- :mod:`repro.workloads.stream` — a continuous, seeded mutation stream
  (sensor observations, page edits, new registrations) that races the
  incremental ranker and feeds the staleness-lag gauges.
"""

from repro.workloads.webgraphs import (
    erdos_renyi_graph,
    paired_link_structures,
    preferential_attachment_graph,
)
from repro.workloads.generator import CorpusSpec, SyntheticCorpus, generate_corpus
from repro.workloads.stream import (
    MutationEvent,
    MutationStream,
    StreamDriver,
    StreamReport,
)
from repro.workloads.tags import TagWorkload, generate_tag_workload

__all__ = [
    "erdos_renyi_graph",
    "preferential_attachment_graph",
    "paired_link_structures",
    "CorpusSpec",
    "SyntheticCorpus",
    "generate_corpus",
    "MutationEvent",
    "MutationStream",
    "StreamDriver",
    "StreamReport",
    "TagWorkload",
    "generate_tag_workload",
]
