"""Name pools for the synthetic Swiss-Experiment-like corpus.

The real platform hosts environmental-research metadata contributed by
Swiss institutes; these pools mirror that vocabulary so generated pages
read like the ones in the paper's screenshots (field sites in the Alps,
weather stations, snow/wind/temperature sensors, participating
universities). Purely fictional entries are mixed in to avoid implying the
data is real.
"""

from __future__ import annotations

INSTITUTIONS = [
    "EPFL",
    "ETH Zurich",
    "WSL",
    "SLF Davos",
    "University of Basel",
    "University of Bern",
    "EAWAG",
    "MeteoSwiss",
    "University of Zurich",
    "PSI",
    "Empa",
    "University of Geneva",
]

FIELD_SITES = [
    "Wannengrat",
    "Davos",
    "Zermatt",
    "Grimsel",
    "Jungfraujoch",
    "Val Ferret",
    "Rietholzbach",
    "Genepi",
    "Aletsch",
    "Lago Bianco",
    "Plaine Morte",
    "Furka Pass",
    "Lauteraar",
    "Piz Corvatsch",
    "Monte Rosa",
    "Engadin",
]

PROJECTS = [
    "Swiss Experiment",
    "SensorScope",
    "PermaSense",
    "Hydrosys",
    "SnowFlux",
    "AlpWatch",
    "GlacierNet",
    "WindMap CH",
    "AvalancheWarn",
    "ClimArc",
]

SENSOR_TYPES = [
    "temperature",
    "humidity",
    "wind speed",
    "wind direction",
    "snow height",
    "solar radiation",
    "precipitation",
    "soil moisture",
    "pressure",
    "water level",
    "discharge",
    "turbidity",
    "co2",
    "infrared surface temperature",
]

MANUFACTURERS = [
    "Campbell Scientific",
    "Vaisala",
    "Sensirion",
    "Decagon",
    "Kipp & Zonen",
    "Lufft",
    "OTT Hydromet",
    "Gill Instruments",
]

STATION_PREFIXES = [
    "WAN",
    "DAV",
    "ZER",
    "GRI",
    "JUN",
    "VFE",
    "RIE",
    "GEN",
    "ALE",
    "LBI",
]

PEOPLE = [
    "N. Dawes",
    "K. Aberer",
    "M. Lehning",
    "S. Michel",
    "A. Salehi",
    "H. Jeung",
    "I. Paparrizos",
    "M. Parlange",
    "G. Barrenetxea",
    "M. Bavay",
]

TAG_TOPICS = {
    "weather": ["temperature", "wind", "humidity", "precipitation", "forecast", "storm"],
    "snow": ["snow height", "avalanche", "snowpack", "slf", "winter", "skiing"],
    "hydrology": ["discharge", "river", "water level", "turbidity", "catchment", "flood"],
    "infrastructure": ["station", "gsn", "wireless", "battery", "maintenance", "solar panel"],
    "institutions": ["epfl", "eth", "wsl", "meteoswiss", "university", "lab"],
}
