"""A continuous, seeded mutation stream over a loaded repository.

The paper's platform is not a static corpus: sensors report, pages get
edited, deployments grow. This module turns the synthetic corpus into
that write stream — a deterministic sequence of
:class:`MutationEvent`\\ s (sensor observations, page edits, new-sensor
registrations) that applies identically to a
:class:`~repro.smr.repository.SensorMetadataRepository` and a
:class:`~repro.shard.repository.ShardedRepository`, because both speak
the same ``register`` facade. :class:`StreamDriver` races the stream
against the incremental ranker's Gauss–Southwell warm start and samples
the staleness lag while writes land — the live counterpart of the
Fig. 3 convergence study, and the series the per-shard
staleness-lag gauges and ``bench_sharding`` gate on.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ReproError
from repro.smr.model import KIND_ORDER, record_class_for
from repro.workloads.generator import SyntheticCorpus

_SENSOR_TYPES = ("temperature", "humidity", "pressure", "wind speed", "snow height")


@dataclass(frozen=True)
class MutationEvent:
    """One write: a full replacement registration of one metadata page.

    ``register`` replaces the page wholesale, so every event carries the
    complete annotation set — applying the same event list to two
    repositories leaves them in identical states regardless of what
    either contained before the stream touched those titles.
    """

    #: "observe" (sensor reading lands), "edit" (description touched) or
    #: "create" (a new sensor page appears).
    event: str
    record_kind: str
    title: str
    annotations: Tuple[Tuple[str, Any], ...]
    links: Tuple[str, ...] = ()
    description: str = ""

    def apply(self, repo: Any) -> None:
        """Apply to any repository speaking the SMR ``register`` facade."""
        repo.register(
            self.record_kind,
            self.title,
            list(self.annotations),
            links=self.links,
            description=self.description,
        )


class MutationStream:
    """Seeded generator of mutation events grounded in a corpus.

    Event mix (by default): 70 % sensor observations (a reading lands as
    unmapped ``last_value`` / ``observed_at`` annotations — properties
    outside the schema mapping, exercising the SPARQL filter path), 25 %
    page edits (description churn), 5 % new sensor registrations linked
    to an existing station. The stream tracks each title's full
    annotation state, so repeated events on one page compose rather than
    reset earlier observations.
    """

    def __init__(
        self,
        corpus: SyntheticCorpus,
        seed: int = 0,
        observe_weight: float = 0.70,
        edit_weight: float = 0.25,
        create_weight: float = 0.05,
    ):
        weights = (observe_weight, edit_weight, create_weight)
        if min(weights) < 0 or sum(weights) <= 0:
            raise ReproError(f"invalid stream weights {weights}")
        self._rng = random.Random(seed)
        self._weights = weights
        self._sequence = 0
        # title -> (kind, full annotation list, links, description); the
        # stream owns the evolving state for every page it has touched.
        self._state: Dict[str, Tuple[str, List[Tuple[str, Any]], Tuple[str, ...], str]] = {}
        extra_links: Dict[str, List[str]] = {}
        for source, target in corpus.page_links:
            extra_links.setdefault(source, []).append(target)
        for kind in KIND_ORDER:
            for record in corpus.records_of(kind):
                typed = record_class_for(kind).from_record(record)
                self._state[typed.title] = (
                    kind,
                    list(typed.annotations()),
                    tuple(extra_links.get(typed.title, ())),
                    "",
                )
        self._sensors = [t for t, s in self._state.items() if s[0] == "sensor"]
        self._stations = [t for t, s in self._state.items() if s[0] == "station"]
        if not self._sensors or not self._stations:
            raise ReproError("mutation stream needs at least one sensor and station")

    def _event_from_state(self, event: str, title: str) -> MutationEvent:
        kind, annotations, links, description = self._state[title]
        return MutationEvent(
            event=event,
            record_kind=kind,
            title=title,
            annotations=tuple(annotations),
            links=links,
            description=description,
        )

    def _observe(self) -> MutationEvent:
        title = self._rng.choice(self._sensors)
        kind, annotations, links, description = self._state[title]
        merged = [(p, v) for p, v in annotations if p not in ("last_value", "observed_at")]
        merged.append(("last_value", round(self._rng.uniform(-25.0, 45.0), 2)))
        merged.append(("observed_at", f"2010-07-{1 + self._sequence % 28:02d}T{self._sequence % 24:02d}:00:00"))
        self._state[title] = (kind, merged, links, description)
        return self._event_from_state("observe", title)

    def _edit(self) -> MutationEvent:
        title = self._rng.choice(sorted(self._state))
        kind, annotations, links, _ = self._state[title]
        description = f"Revision {self._sequence} from the mutation stream."
        self._state[title] = (kind, annotations, links, description)
        return self._event_from_state("edit", title)

    def _create(self) -> MutationEvent:
        station = self._rng.choice(self._stations)
        sensor_type = self._rng.choice(_SENSOR_TYPES)
        title = f"Sensor:STREAM-{self._sequence}"
        annotations: List[Tuple[str, Any]] = [
            ("name", f"Streamed {sensor_type} #{self._sequence}"),
            ("station", station),
            ("sensor_type", sensor_type),
            ("manufacturer", "Streamline Instruments"),
            ("serial", f"ST{self._sequence:06d}"),
            ("sampling_rate_s", self._rng.choice([1, 10, 60, 300])),
            ("accuracy", round(self._rng.uniform(0.05, 2.0), 2)),
            ("installed_year", 2010),
        ]
        self._state[title] = ("sensor", annotations, (station,), "")
        self._sensors.append(title)
        return self._event_from_state("create", title)

    def next_event(self) -> MutationEvent:
        """The next event in the deterministic sequence."""
        self._sequence += 1
        kind = self._rng.choices(
            ("observe", "edit", "create"), weights=self._weights
        )[0]
        if kind == "observe":
            return self._observe()
        if kind == "edit":
            return self._edit()
        return self._create()

    def events(self, count: int) -> List[MutationEvent]:
        """The next ``count`` events (same seed -> same list)."""
        if count < 0:
            raise ReproError(f"event count must be >= 0, got {count}")
        return [self.next_event() for _ in range(count)]


@dataclass
class StreamReport:
    """What one driver run did and how the ranker kept up."""

    applied: int
    seconds: float
    lags: List[int] = field(default_factory=list)
    final_lag: int = 0
    shard_lags: List[List[int]] = field(default_factory=list)

    @property
    def events_per_second(self) -> float:
        return self.applied / self.seconds if self.seconds > 0 else 0.0

    @property
    def max_lag(self) -> int:
        return max(self.lags) if self.lags else 0

    @property
    def mean_lag(self) -> float:
        return sum(self.lags) / len(self.lags) if self.lags else 0.0

    @property
    def max_shard_lag(self) -> int:
        return max((max(row) for row in self.shard_lags if row), default=0)


class StreamDriver:
    """Applies a mutation stream while the ranker chases freshness.

    Every ``refresh_every`` events the driver asks the ranker to refresh
    (the incremental Gauss–Southwell path when the dirty set is small)
    and samples the staleness lag — per shard too, when the ranker
    exposes ``shard_staleness``. After the stream drains it quiesces
    with one final refresh, so ``final_lag`` is 0 whenever the ranker
    can keep up at all.
    """

    def __init__(self, refresh_every: int = 50):
        if refresh_every <= 0:
            raise ReproError(f"refresh_every must be positive, got {refresh_every}")
        self.refresh_every = refresh_every

    def run(
        self,
        repo: Any,
        events: Sequence[MutationEvent],
        ranker: Any = None,
    ) -> StreamReport:
        """Apply ``events`` to ``repo``, refreshing ``ranker`` on cadence.

        Staleness lag is sampled *before* each refresh (the accrued
        race deficit) and once more after a final quiescent refresh,
        which must bring the lag back to zero.
        """
        registry = obs.get_registry()
        counter = None
        if registry.enabled:
            counter = registry.counter(
                "workloads_stream_events_total",
                "Mutation-stream events applied, per event type.",
                labels=("type",),
            )
        report = StreamReport(applied=0, seconds=0.0)
        started = time.perf_counter()
        for i, event in enumerate(events, start=1):
            event.apply(repo)
            report.applied += 1
            if counter is not None:
                counter.labels(event.event).inc()
            if ranker is not None and i % self.refresh_every == 0:
                self._sample(ranker, report)
        if ranker is not None:
            self._sample(ranker, report)
            report.final_lag = ranker.record_staleness()
        report.seconds = time.perf_counter() - started
        return report

    @staticmethod
    def _sample(ranker: Any, report: StreamReport) -> None:
        # Record the lag *before* refreshing: this is the staleness the
        # ranker accrued while the stream raced ahead, and it is what the
        # staleness gauges should show. The refresh then catches up.
        report.lags.append(ranker.record_staleness())
        shard_staleness = getattr(ranker, "shard_staleness", None)
        if callable(shard_staleness):
            report.shard_lags.append([entry["lag"] for entry in shard_staleness()])
        ranker.scores()
