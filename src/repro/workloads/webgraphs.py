"""Random link structures for the PageRank evaluation (Fig. 3).

Real wiki corpora have heavy-tailed in-degree distributions and a sizable
fraction of dangling pages; the generators here reproduce both so that the
solver comparison runs on matrices of the same character the paper's
production system faces.

All generators are deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.errors import LinalgError
from repro.pagerank.webgraph import LinkGraph


def erdos_renyi_graph(n: int, avg_out_degree: float = 8.0, seed: int = 0) -> LinkGraph:
    """Return a directed G(n, p) graph with ``p = avg_out_degree / n``.

    Self-links are excluded. Some nodes will naturally end up dangling.
    """
    if n <= 0:
        raise LinalgError(f"graph size must be positive, got {n}")
    rng = random.Random(seed)
    p = min(1.0, avg_out_degree / max(1, n - 1))
    graph = LinkGraph(n)
    for src in range(n):
        for dst in range(n):
            if src != dst and rng.random() < p:
                graph.add_edge(src, dst)
    return graph


def preferential_attachment_graph(
    n: int,
    out_degree: int = 8,
    dangling_fraction: float = 0.15,
    sink_pairs: int = 8,
    seed: int = 0,
) -> LinkGraph:
    """Return a power-law directed graph built by preferential attachment.

    Each new page links to ``out_degree`` targets chosen proportionally to
    current in-degree (plus one, so early pages do not monopolize), except
    that a ``dangling_fraction`` of pages receive no out-links at all —
    matching the paper's concern with dangling metadata pages.

    ``sink_pairs`` pages pairs link *only to each other* (twin pages that
    cross-reference and nothing else — common in wiki corpora). They make
    the transition matrix reducible with several closed subsets, which
    pins the Google matrix's second eigenvalue at the teleport coefficient
    ``c`` (Haveliwala & Kamvar). Without them, a random synthetic graph
    mixes unrealistically fast and every solver looks equally cheap —
    the slow-mixing regime is exactly where Fig. 3 differentiates them.
    """
    if n <= 0:
        raise LinalgError(f"graph size must be positive, got {n}")
    if not 0.0 <= dangling_fraction < 1.0:
        raise LinalgError(f"dangling fraction must lie in [0, 1), got {dangling_fraction}")
    if sink_pairs < 0 or 2 * sink_pairs > n:
        raise LinalgError(f"sink_pairs must satisfy 0 <= 2*sink_pairs <= n, got {sink_pairs}")
    rng = random.Random(seed)
    graph = LinkGraph(n)
    # The last 2*sink_pairs pages are reserved for mutual-link sinks.
    core = n - 2 * sink_pairs
    # repeated-targets list implements preferential attachment in O(1) draws
    attractiveness: list[int] = list(range(min(core, out_degree + 1)))
    for src in range(core):
        if rng.random() < dangling_fraction:
            continue
        candidates = attractiveness if attractiveness else list(range(max(core, 1)))
        links = 0
        attempts = 0
        while links < min(out_degree, core - 1) and attempts < out_degree * 10:
            attempts += 1
            dst = candidates[rng.randrange(len(candidates))]
            if dst == src or dst in graph.out_links(src):
                continue
            graph.add_edge(src, dst)
            attractiveness.append(dst)
            links += 1
    for pair in range(sink_pairs):
        first = core + 2 * pair
        second = first + 1
        graph.add_edge(first, second)
        graph.add_edge(second, first)
        # The core references the sinks so they carry real PageRank mass.
        if core:
            graph.add_edge(rng.randrange(core), first)
    return graph


def paired_link_structures(
    n: int,
    web_out_degree: int = 8,
    semantic_out_degree: int = 4,
    semantic_coverage: float = 0.6,
    sink_pairs: int = 8,
    seed: int = 0,
) -> Tuple[LinkGraph, LinkGraph]:
    """Return ``(web, semantic)`` graphs over the same pages.

    The web graph is power-law (with ``sink_pairs`` mutual-link sinks, see
    :func:`preferential_attachment_graph`); the semantic graph covers only
    a ``semantic_coverage`` fraction of pages (the paper: "not all of the
    metadata pages have semantic attributes") and links within property
    clusters — pages sharing a cluster are semantically related. Sink
    pages carry no semantic annotations, so they stay closed subsets in
    the blended structure too.
    """
    if not 0.0 < semantic_coverage <= 1.0:
        raise LinalgError(f"semantic coverage must lie in (0, 1], got {semantic_coverage}")
    rng = random.Random(seed)
    web = preferential_attachment_graph(
        n, out_degree=web_out_degree, sink_pairs=sink_pairs, seed=seed
    )
    semantic = LinkGraph(n)
    core = n - 2 * sink_pairs
    cluster_count = max(1, core // 20)
    cluster_of = [rng.randrange(cluster_count) for _ in range(core)]
    members: dict[int, list[int]] = {}
    for page, cluster in enumerate(cluster_of):
        members.setdefault(cluster, []).append(page)
    for page in range(core):
        if rng.random() > semantic_coverage:
            continue
        peers = [p for p in members[cluster_of[page]] if p != page]
        if not peers:
            continue
        rng.shuffle(peers)
        for dst in peers[:semantic_out_degree]:
            semantic.add_edge(page, dst)
    return web, semantic
