"""Synthetic Swiss-Experiment-like metadata corpus (seeded, deterministic).

:func:`generate_corpus` produces a :class:`SyntheticCorpus`: plain record
dicts for institutions, field sites, deployments, stations and sensors,
plus the page-link and semantic-link structure among them. The corpus is
substrate-agnostic — ``repro.smr`` turns it into wiki pages, relational
rows and RDF triples; the PageRank and tagging studies consume the link
structures directly.

Coordinates are drawn inside a Swiss-Alps bounding box so the map
visualizations (Fig. 2) render plausible clusters.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import obs
from repro.errors import ReproError
from repro.workloads import names

# Rough bounding box of the Swiss Alps (lat, lon).
_LAT_RANGE = (45.8, 47.0)
_LON_RANGE = (6.8, 10.5)


@dataclass(frozen=True)
class CorpusSpec:
    """Size knobs for the synthetic corpus.

    The defaults give a corpus of a few hundred pages — comparable to a
    single-institution slice of the real platform and quick to index.
    """

    institutions: int = 8
    field_sites: int = 10
    deployments: int = 20
    stations: int = 60
    sensors: int = 240
    seed: int = 42

    def validate(self) -> None:
        """Raise :class:`ReproError` when any size knob is invalid."""
        for name, value in (
            ("institutions", self.institutions),
            ("field_sites", self.field_sites),
            ("deployments", self.deployments),
            ("stations", self.stations),
            ("sensors", self.sensors),
        ):
            if value <= 0:
                raise ReproError(f"corpus spec field {name!r} must be positive, got {value}")
        if self.institutions > len(names.INSTITUTIONS):
            raise ReproError(
                f"at most {len(names.INSTITUTIONS)} institutions available, "
                f"requested {self.institutions}"
            )
        if self.field_sites > len(names.FIELD_SITES):
            raise ReproError(
                f"at most {len(names.FIELD_SITES)} field sites available, "
                f"requested {self.field_sites}"
            )


@dataclass
class SyntheticCorpus:
    """The generated corpus: records plus linking structure.

    Attributes
    ----------
    records:
        Kind -> list of record dicts. Every record carries ``title`` (its
        wiki page title) and kind-specific properties.
    page_links:
        Ordinary web links as ``(source_title, target_title)`` pairs.
    semantic_links:
        Links induced by semantic properties, as
        ``(source_title, property_name, target_title)`` triples.
    """

    spec: CorpusSpec
    records: Dict[str, List[dict]] = field(default_factory=dict)
    page_links: List[Tuple[str, str]] = field(default_factory=list)
    semantic_links: List[Tuple[str, str, str]] = field(default_factory=list)

    def all_titles(self) -> List[str]:
        """Return every page title, grouped by kind, deterministic order."""
        titles: List[str] = []
        for kind in sorted(self.records):
            titles.extend(record["title"] for record in self.records[kind])
        return titles

    @property
    def page_count(self) -> int:
        return sum(len(rows) for rows in self.records.values())

    def records_of(self, kind: str) -> List[dict]:
        """Return the records of one kind (empty list if absent)."""
        return self.records.get(kind, [])


def generate_corpus(spec: CorpusSpec | None = None) -> SyntheticCorpus:
    """Generate the corpus described by ``spec`` (defaults apply otherwise)."""
    spec = spec or CorpusSpec()
    spec.validate()
    started = time.perf_counter()
    rng = random.Random(spec.seed)
    corpus = SyntheticCorpus(spec=spec)

    institutions = [
        {
            "title": f"Institution:{name}",
            "name": name,
            "country": "Switzerland",
            "contact": rng.choice(names.PEOPLE),
        }
        for name in names.INSTITUTIONS[: spec.institutions]
    ]

    field_sites = []
    for site_name in names.FIELD_SITES[: spec.field_sites]:
        field_sites.append(
            {
                "title": f"Fieldsite:{site_name}",
                "name": site_name,
                "latitude": round(rng.uniform(*_LAT_RANGE), 5),
                "longitude": round(rng.uniform(*_LON_RANGE), 5),
                "elevation_m": rng.randrange(400, 4000, 10),
            }
        )

    deployments = []
    for i in range(spec.deployments):
        site = rng.choice(field_sites)
        institution = rng.choice(institutions)
        project = rng.choice(names.PROJECTS)
        deployments.append(
            {
                "title": f"Deployment:{site['name']} {project} {i + 1}",
                "name": f"{site['name']} {project} {i + 1}",
                "field_site": site["title"],
                "institution": institution["title"],
                "project": project,
                "start_year": rng.randrange(2004, 2011),
                "status": rng.choice(["active", "completed", "maintenance"]),
            }
        )

    stations = []
    for i in range(spec.stations):
        deployment = rng.choice(deployments)
        site = next(s for s in field_sites if s["title"] == deployment["field_site"])
        prefix = rng.choice(names.STATION_PREFIXES)
        stations.append(
            {
                "title": f"Station:{prefix}-{i + 1:03d}",
                "name": f"{prefix}-{i + 1:03d}",
                "deployment": deployment["title"],
                "latitude": round(site["latitude"] + rng.uniform(-0.05, 0.05), 5),
                "longitude": round(site["longitude"] + rng.uniform(-0.05, 0.05), 5),
                "elevation_m": site["elevation_m"] + rng.randrange(-100, 100),
                "status": rng.choice(["online", "online", "online", "offline"]),
            }
        )

    sensors = []
    for i in range(spec.sensors):
        station = rng.choice(stations)
        sensor_type = rng.choice(names.SENSOR_TYPES)
        sensors.append(
            {
                "title": f"Sensor:{station['name']}-{sensor_type.replace(' ', '_')}-{i + 1}",
                "name": f"{station['name']} {sensor_type} #{i + 1}",
                "station": station["title"],
                "sensor_type": sensor_type,
                "manufacturer": rng.choice(names.MANUFACTURERS),
                "serial": f"SN{rng.randrange(10_000, 99_999)}",
                "sampling_rate_s": rng.choice([1, 10, 30, 60, 300, 600]),
                "accuracy": round(rng.uniform(0.05, 2.0), 2),
                "installed_year": rng.randrange(2005, 2011),
            }
        )

    corpus.records = {
        "institution": institutions,
        "field_site": field_sites,
        "deployment": deployments,
        "station": stations,
        "sensor": sensors,
    }

    _derive_links(corpus, rng)
    registry = obs.get_registry()
    if registry.enabled:
        # Workload-side telemetry: how much synthetic load this process
        # has manufactured, and at what cost — the generator is the
        # ingestion source the sampler's staleness-lag series races.
        registry.counter(
            "workloads_pages_generated_total",
            "Synthetic corpus pages generated by this process.",
        ).inc(corpus.page_count)
        registry.counter(
            "workloads_links_generated_total",
            "Synthetic web+semantic links generated by this process.",
        ).inc(len(corpus.page_links) + len(corpus.semantic_links))
        registry.gauge(
            "workloads_last_corpus_pages",
            "Page count of the most recently generated corpus.",
        ).set(float(corpus.page_count))
        registry.histogram(
            "workloads_generate_seconds",
            "Wall time to generate one synthetic corpus.",
        ).observe(time.perf_counter() - started)
    return corpus


def _derive_links(corpus: SyntheticCorpus, rng: random.Random) -> None:
    """Populate semantic links from properties and add free-form page links."""
    semantic = corpus.semantic_links
    for deployment in corpus.records["deployment"]:
        semantic.append((deployment["title"], "field_site", deployment["field_site"]))
        semantic.append((deployment["title"], "institution", deployment["institution"]))
    for station in corpus.records["station"]:
        semantic.append((station["title"], "deployment", station["deployment"]))
    for sensor in corpus.records["sensor"]:
        semantic.append((sensor["title"], "station", sensor["station"]))

    # Free-form wiki links: pages casually referencing popular pages, with a
    # bias toward institutions and field sites (hub pages on the platform).
    titles = corpus.all_titles()
    hubs = [r["title"] for r in corpus.records["institution"]]
    hubs += [r["title"] for r in corpus.records["field_site"]]
    for title in titles:
        for _ in range(rng.randrange(0, 4)):
            target = rng.choice(hubs) if rng.random() < 0.6 else rng.choice(titles)
            if target != title:
                corpus.page_links.append((title, target))
    # Deduplicate while keeping deterministic order.
    corpus.page_links = sorted(set(corpus.page_links))
    corpus.semantic_links = sorted(set(corpus.semantic_links))
