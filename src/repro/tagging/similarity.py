"""The Matrix Transformation module (Fig. 4).

"The stored tags are given as input to the Matrix Transformation module.
This module then computes tag matrices based on using the cosine
similarity measure (two tags considered similar for a threshold above
50%). Each matrix is considered as a graph in which 1 denotes a link from
one tag to another and 0 denotes no linking between tags."

Each tag's vector is the set of pages it annotates (binary occurrence
vector); the cosine of two tags is then their page-overlap normalized by
the geometric mean of their frequencies — co-occurring tags are similar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import TaggingError
from repro.tagging.store import TagStore
from repro.text.tfidf import cosine_similarity

DEFAULT_THRESHOLD = 0.5  # the paper's "above 50%"


@dataclass
class SimilarityMatrix:
    """Pairwise tag similarities plus the thresholded 0/1 adjacency."""

    tags: List[str]
    similarities: np.ndarray  # dense, symmetric, unit diagonal
    adjacency: np.ndarray  # 0/1, zero diagonal
    threshold: float

    def similarity(self, tag_a: str, tag_b: str) -> float:
        """The cosine between two tags; raises for unknown tags."""
        try:
            i, j = self.tags.index(tag_a), self.tags.index(tag_b)
        except ValueError as exc:
            raise TaggingError(f"unknown tag in similarity lookup: {exc}") from None
        return float(self.similarities[i, j])

    def linked(self, tag_a: str, tag_b: str) -> bool:
        """True when the two tags exceed the similarity threshold."""
        i, j = self.tags.index(tag_a), self.tags.index(tag_b)
        return bool(self.adjacency[i, j])


def build_similarity(
    store: TagStore, threshold: float = DEFAULT_THRESHOLD
) -> SimilarityMatrix:
    """Compute the tag similarity matrix from a tag store.

    ``threshold`` is exclusive, per the paper's "above 50 %": a cosine of
    exactly 0.5 does *not* link two tags.
    """
    if not 0.0 <= threshold <= 1.0:
        raise TaggingError(f"threshold must lie in [0, 1], got {threshold}")
    tags = store.tags()
    vectors: List[Dict[str, float]] = [
        {page: 1.0 for page in store.pages_of(tag)} for tag in tags
    ]
    n = len(tags)
    similarities = np.eye(n)
    adjacency = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            sim = cosine_similarity(vectors[i], vectors[j])
            similarities[i, j] = similarities[j, i] = sim
            if sim > threshold:
                adjacency[i, j] = adjacency[j, i] = 1.0
    return SimilarityMatrix(tags, similarities, adjacency, threshold)
