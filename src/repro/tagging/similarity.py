"""The Matrix Transformation module (Fig. 4).

"The stored tags are given as input to the Matrix Transformation module.
This module then computes tag matrices based on using the cosine
similarity measure (two tags considered similar for a threshold above
50%). Each matrix is considered as a graph in which 1 denotes a link from
one tag to another and 0 denotes no linking between tags."

Each tag's vector is the set of pages it annotates (binary occurrence
vector); the cosine of two tags is then their page-overlap normalized by
the geometric mean of their frequencies — co-occurring tags are similar.

The matrix is built by a vectorized tile kernel over a tag↔page
incidence CSR (:func:`_similarity_tile`): for binary vectors the legacy
per-pair ``cosine_similarity`` reduces to ``overlap / (sqrt(|a|) *
sqrt(|b|))``, and the kernel performs those exact float operations, so
the result is bitwise identical to the historical dict-based loop
(pinned in ``tests/test_tagging.py``). Row tiles fan out to the
``kind="cpu"`` process backend (:mod:`repro.perf.procpool`) for large
tag sets and degrade process → thread → serial with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TaggingError
from repro.tagging.store import TagStore

DEFAULT_THRESHOLD = 0.5  # the paper's "above 50%"

#: Below this many tags the tile fan-out costs more than it saves.
_PARALLEL_MIN_TAGS = 128


@dataclass
class SimilarityMatrix:
    """Pairwise tag similarities plus the thresholded 0/1 adjacency."""

    tags: List[str]
    similarities: np.ndarray  # dense, symmetric, unit diagonal
    adjacency: np.ndarray  # 0/1, zero diagonal
    threshold: float

    def similarity(self, tag_a: str, tag_b: str) -> float:
        """The cosine between two tags; raises for unknown tags."""
        try:
            i, j = self.tags.index(tag_a), self.tags.index(tag_b)
        except ValueError as exc:
            raise TaggingError(f"unknown tag in similarity lookup: {exc}") from None
        return float(self.similarities[i, j])

    def linked(self, tag_a: str, tag_b: str) -> bool:
        """True when the two tags exceed the similarity threshold."""
        i, j = self.tags.index(tag_a), self.tags.index(tag_b)
        return bool(self.adjacency[i, j])


def _incidence_arrays(store: TagStore, tags: List[str]) -> Dict[str, np.ndarray]:
    """Tag→page and page→tag incidence CSR arrays plus per-tag norms.

    Page ids are positions in the sorted union of annotated pages; both
    directions are needed because a tile computes one tag's overlaps by
    walking its pages and counting the *other* tags on each page.
    """
    page_ids: Dict[str, int] = {}
    tag_pages: List[List[int]] = []
    for tag in tags:
        pages = store.pages_of(tag)
        ids = []
        for page in pages:
            pid = page_ids.setdefault(page, len(page_ids))
            ids.append(pid)
        tag_pages.append(ids)
    n, m = len(tags), len(page_ids)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for i, ids in enumerate(tag_pages):
        indptr[i + 1] = indptr[i] + len(ids)
    indices = np.zeros(int(indptr[-1]), dtype=np.int64)
    for i, ids in enumerate(tag_pages):
        indices[indptr[i] : indptr[i + 1]] = ids
    # transpose: page -> tags, via a counting sort over the same pairs
    tindptr = np.zeros(m + 1, dtype=np.int64)
    if indices.size:
        np.add.at(tindptr, indices + 1, 1)
        np.cumsum(tindptr, out=tindptr)
    tindices = np.zeros(indices.size, dtype=np.int64)
    cursor = tindptr[:-1].copy()
    for i in range(n):
        for pid in indices[indptr[i] : indptr[i + 1]]:
            tindices[cursor[pid]] = i
            cursor[pid] += 1
    counts = (indptr[1:] - indptr[:-1]).astype(float)
    return {
        "indptr": indptr,
        "indices": indices,
        "tindptr": tindptr,
        "tindices": tindices,
        "sqrtc": np.sqrt(counts),
    }


def _similarity_tile(
    arrays: Dict[str, np.ndarray], start: int, stop: int
) -> np.ndarray:
    """Rows ``[start, stop)`` of the cosine matrix over incidence slabs.

    For binary page vectors the cosine is ``overlap / (sqrt(|a|) *
    sqrt(|b|))`` — the same float divides and multiplies, in the same
    order, as ``repro.text.tfidf.cosine_similarity`` on 1.0-valued
    dicts, so tiles are bitwise identical to the legacy pairwise loop.
    Empty tags get 0.0 rows/columns (the legacy empty-vector contract);
    the diagonal is left as computed — the caller overwrites it with
    exact 1.0, as the legacy ``np.eye`` seed did.
    """
    indptr = arrays["indptr"]
    indices = arrays["indices"]
    tindptr = arrays["tindptr"]
    tindices = arrays["tindices"]
    sqrtc = arrays["sqrtc"]
    n = sqrtc.size
    out = np.zeros((stop - start, n))
    for row, i in enumerate(range(start, stop)):
        lo, hi = indptr[i], indptr[i + 1]
        if hi == lo:
            continue  # empty tag: cosine 0.0 against everything
        cotags = np.concatenate(
            [tindices[tindptr[p] : tindptr[p + 1]] for p in indices[lo:hi]]
        )
        overlap = np.bincount(cotags, minlength=n).astype(float)
        denom = sqrtc[i] * sqrtc
        nonzero = denom > 0.0
        out[row, nonzero] = overlap[nonzero] / denom[nonzero]
    return out


def _similarity_rows(
    arrays: Dict[str, np.ndarray], n: int, pool: Optional[object]
) -> np.ndarray:
    """The full cosine matrix, fanned out process → thread → serial."""
    from repro.perf import pool as perf_pool
    from repro.perf import procpool

    proc = pool if isinstance(pool, procpool.ProcessWorkerPool) else None
    if proc is None and pool is None and n >= _PARALLEL_MIN_TAGS:
        proc = procpool.get_process_pool()
    if proc is not None:
        bounds = perf_pool.chunk_ranges(n, proc.size)
        try:
            tiles = proc.run_kernel(
                _similarity_tile, dict(arrays), bounds, label="tagging.similarity"
            )
            return np.vstack(tiles)
        except procpool.ProcpoolUnavailable:
            pass  # marked down; fall through to the thread pool
    if n >= _PARALLEL_MIN_TAGS:
        thread_pool = pool if isinstance(pool, perf_pool.WorkerPool) else None
        bounds = perf_pool.chunk_ranges(n, (thread_pool or perf_pool.get_pool()).size)
        tiles = perf_pool.parallel_map(
            lambda b: _similarity_tile(arrays, *b),
            bounds,
            pool=thread_pool,
            label="tagging.similarity",
        )
        return np.vstack(tiles)
    return _similarity_tile(arrays, 0, n)


def build_similarity(
    store: TagStore,
    threshold: float = DEFAULT_THRESHOLD,
    pool: Optional[object] = None,
) -> SimilarityMatrix:
    """Compute the tag similarity matrix from a tag store.

    ``threshold`` is exclusive, per the paper's "above 50 %": a cosine of
    exactly 0.5 does *not* link two tags. ``pool`` pins a backend (a
    :class:`~repro.perf.procpool.ProcessWorkerPool` or
    :class:`~repro.perf.pool.WorkerPool`); by default large tag sets use
    the shared process pool and degrade to threads, then serial, with
    bitwise-identical matrices at every level.
    """
    if not 0.0 <= threshold <= 1.0:
        raise TaggingError(f"threshold must lie in [0, 1], got {threshold}")
    tags = store.tags()
    n = len(tags)
    arrays = _incidence_arrays(store, tags)
    similarities = _similarity_rows(arrays, n, pool)
    if n:
        np.fill_diagonal(similarities, 1.0)
    adjacency = (similarities > threshold).astype(float)
    if n:
        np.fill_diagonal(adjacency, 0.0)
    return SimilarityMatrix(tags, similarities, adjacency, threshold)
