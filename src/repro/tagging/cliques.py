"""The Max Clique Algorithm module: Bron–Kerbosch (Fig. 4, reference [11]).

The paper uses "the Bron-Kerbosch algorithm for finding maximal cliques
in an undirected graph", in an implementation "extended to optimize
candidate tag selection and minimize recursion steps". The two standard
optimizations with exactly that effect are implemented here:

- **pivoting** (Bron & Kerbosch's version 2): recursion only branches on
  vertices *not* adjacent to a chosen pivot, pruning the candidate set;
- **degeneracy ordering** at the outermost level (Eppstein et al.), which
  bounds the recursion depth on sparse graphs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.tagging.graphmod import TagGraph


def degeneracy_order(graph: TagGraph) -> List[str]:
    """Return the vertices in degeneracy order (repeatedly remove min-degree).

    Ties break alphabetically so the ordering — and hence the clique
    enumeration order — is deterministic.
    """
    degrees: Dict[str, int] = {node: graph.degree(node) for node in graph.nodes}
    remaining: Set[str] = set(degrees)
    order: List[str] = []
    while remaining:
        node = min(remaining, key=lambda n: (degrees[n], n))
        order.append(node)
        remaining.discard(node)
        for neighbor in graph.neighbors(node):
            if neighbor in remaining:
                degrees[neighbor] -= 1
    return order


def bron_kerbosch(graph: TagGraph) -> List[FrozenSet[str]]:
    """Enumerate all maximal cliques, sorted (largest first, then lexical).

    Isolated vertices form singleton maximal cliques — the paper's Eq. 6
    needs every tag to belong to at least one clique (``C >= 1``).
    """
    cliques: List[FrozenSet[str]] = []
    adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes}

    def expand(r: Set[str], p: Set[str], x: Set[str]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        # Pivot: the vertex of P ∪ X with most neighbors inside P.
        pivot = max(p | x, key=lambda n: (len(adjacency[n] & p), n))
        for v in sorted(p - adjacency[pivot]):
            expand(r | {v}, p & adjacency[v], x & adjacency[v])
            p.discard(v)
            x.add(v)

    # Outer level in degeneracy order keeps candidate sets small.
    order = degeneracy_order(graph)
    position = {node: i for i, node in enumerate(order)}
    for v in order:
        later = {n for n in adjacency[v] if position[n] > position[v]}
        earlier = {n for n in adjacency[v] if position[n] < position[v]}
        expand({v}, later, earlier)
    cliques.sort(key=lambda clique: (-len(clique), sorted(clique)))
    return cliques


def cliques_by_tag(cliques: List[FrozenSet[str]]) -> Dict[str, List[FrozenSet[str]]]:
    """tag -> the maximal cliques containing it (in enumeration order)."""
    membership: Dict[str, List[FrozenSet[str]]] = {}
    for clique in cliques:
        for tag in clique:
            membership.setdefault(tag, []).append(clique)
    return membership
