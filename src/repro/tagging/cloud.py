"""Assembling tag clouds: the full Fig. 4 pipeline in one builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.errors import TaggingError
from repro.tagging.cliques import bron_kerbosch, cliques_by_tag
from repro.tagging.fontsize import DEFAULT_MAX_FONT, font_sizes
from repro.tagging.graphmod import TagGraph
from repro.tagging.similarity import DEFAULT_THRESHOLD, build_similarity
from repro.tagging.store import TagStore


@dataclass
class TagEntry:
    """One tag in the finished cloud.

    ``clique_ids`` indexes into :attr:`TagCloud.cliques` — a tag in two
    cliques (the paper's "Apple" example) carries two ids, which the
    renderer turns into two colors.
    """

    tag: str
    count: int
    size: int
    clique_ids: List[int] = field(default_factory=list)

    @property
    def bridges_cliques(self) -> bool:
        """True when the tag belongs to more than one maximal clique."""
        return len(self.clique_ids) > 1


@dataclass
class TagCloud:
    """The assembled cloud: entries plus the clique structure behind them."""

    entries: List[TagEntry]
    cliques: List[FrozenSet[str]]
    threshold: float

    def entry(self, tag: str) -> TagEntry:
        """The entry for ``tag``; raises if not in this cloud."""
        for entry in self.entries:
            if entry.tag == tag:
                return entry
        raise TaggingError(f"tag {tag!r} not in this cloud")

    @property
    def tags(self) -> List[str]:
        return [entry.tag for entry in self.entries]

    def bridge_tags(self) -> List[str]:
        """Tags belonging to several cliques (semantically ambiguous)."""
        return [entry.tag for entry in self.entries if entry.bridges_cliques]


class TagCloudBuilder:
    """Runs: store -> similarity -> graph -> cliques -> font sizes."""

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        max_font: int = DEFAULT_MAX_FONT,
    ):
        self.threshold = threshold
        self.max_font = max_font

    def build(
        self,
        store: TagStore,
        top: Optional[int] = None,
        min_count: int = 1,
    ) -> TagCloud:
        """Build the cloud over the ``top`` most frequent tags.

        ``min_count`` drops noise tags used fewer times; ``top`` caps the
        cloud size ("once all the tags to be shown are selected...").
        """
        counts = {
            tag: count for tag, count in store.counts().items() if count >= min_count
        }
        if top is not None:
            selected = sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:top]
            counts = dict(selected)
        if not counts:
            return TagCloud([], [], self.threshold)
        similarity = build_similarity(store, threshold=self.threshold)
        graph = TagGraph.from_similarity(similarity).subgraph(counts)
        for tag in counts:
            graph.add_node(tag)  # isolated tags still join the cloud
        cliques = bron_kerbosch(graph)
        sizes = font_sizes(counts, cliques, max_font=self.max_font)
        membership = cliques_by_tag(cliques)
        clique_index = {clique: i for i, clique in enumerate(cliques)}
        entries = [
            TagEntry(
                tag=tag,
                count=counts[tag],
                size=sizes[tag],
                clique_ids=[clique_index[c] for c in membership[tag]],
            )
            for tag in sorted(counts, key=lambda t: (-counts[t], t))
        ]
        return TagCloud(entries, cliques, self.threshold)
