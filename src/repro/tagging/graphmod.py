"""The Graph module (Fig. 4): the thresholded similarity matrix as a graph."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import TaggingError


class TagGraph:
    """An undirected graph over tag names."""

    def __init__(self, nodes: Iterable[str] = ()):
        self._adj: Dict[str, Set[str]] = {node: set() for node in nodes}

    @classmethod
    def from_similarity(cls, matrix) -> "TagGraph":
        """Build from a :class:`~repro.tagging.similarity.SimilarityMatrix`."""
        graph = cls(matrix.tags)
        n = len(matrix.tags)
        for i in range(n):
            for j in range(i + 1, n):
                if matrix.adjacency[i, j]:
                    graph.add_edge(matrix.tags[i], matrix.tags[j])
        return graph

    # ------------------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Ensure ``node`` exists (idempotent)."""
        self._adj.setdefault(node, set())

    def add_edge(self, a: str, b: str) -> None:
        """Add the undirected edge ``a -- b``; self-loops are rejected."""
        if a == b:
            raise TaggingError(f"self-loop on {a!r} not allowed in a tag graph")
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)

    def has_edge(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` are adjacent."""
        return b in self._adj.get(a, set())

    def neighbors(self, node: str) -> FrozenSet[str]:
        """The nodes adjacent to ``node``; raises for unknown nodes."""
        if node not in self._adj:
            raise TaggingError(f"unknown tag {node!r}")
        return frozenset(self._adj[node])

    def degree(self, node: str) -> int:
        """Number of neighbors of ``node``."""
        return len(self.neighbors(node))

    @property
    def nodes(self) -> List[str]:
        return sorted(self._adj)

    @property
    def node_count(self) -> int:
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        return sum(len(peers) for peers in self._adj.values()) // 2

    def edges(self) -> List[Tuple[str, str]]:
        """All edges as sorted ``(a, b)`` pairs with ``a < b``."""
        seen = []
        for a in sorted(self._adj):
            for b in sorted(self._adj[a]):
                if a < b:
                    seen.append((a, b))
        return seen

    def subgraph(self, keep: Iterable[str]) -> "TagGraph":
        """The induced subgraph on ``keep``."""
        keep_set = set(keep)
        sub = TagGraph(node for node in self._adj if node in keep_set)
        for a, b in self.edges():
            if a in keep_set and b in keep_set:
                sub.add_edge(a, b)
        return sub

    def connected_components(self) -> List[Set[str]]:
        """Connected components, largest first (ties by smallest member)."""
        remaining = set(self._adj)
        components: List[Set[str]] = []
        while remaining:
            start = min(remaining)
            stack = [start]
            component = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self._adj[node] - component)
            components.append(component)
            remaining -= component
        components.sort(key=lambda c: (-len(c), min(c)))
        return components

    def __repr__(self) -> str:
        return f"TagGraph(nodes={self.node_count}, edges={self.edge_count})"
