"""Tag storage and the Parser module (SMR connectivity).

"Users are able to create tags in each webpage, describing the topic of
it or the metadata. As tags can also be considered the values of metadata
properties of the page." — both sources land here: user-created tags via
:meth:`TagStore.create`, and property values imported from an SMR via
:meth:`TagStore.import_from_smr`.

The store versions itself (every mutation bumps :attr:`version`) so the
cache layer can invalidate without timestamps.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set, Tuple

from repro.errors import TaggingError


def normalize_tag(tag: str) -> str:
    """Canonical tag form: trimmed, lower-case, single-spaced."""
    canonical = " ".join(tag.strip().lower().split())
    if not canonical:
        raise TaggingError("empty tag")
    return canonical


class TagStore:
    """(page, tag) assignments with counts and reverse lookup."""

    def __init__(self):
        self._tags_of: Dict[str, Set[str]] = {}  # page -> tags
        self._pages_of: Dict[str, Set[str]] = {}  # tag -> pages
        self.version = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def create(self, page: str, tag: str) -> bool:
        """Assign ``tag`` to ``page``; returns False if already present."""
        if not page or not page.strip():
            raise TaggingError("tag assignments need a page title")
        canonical = normalize_tag(tag)
        page = page.strip()
        if canonical in self._tags_of.get(page, set()):
            return False
        self._tags_of.setdefault(page, set()).add(canonical)
        self._pages_of.setdefault(canonical, set()).add(page)
        self.version += 1
        return True

    def remove(self, page: str, tag: str) -> bool:
        """Remove one assignment; returns False if it did not exist."""
        canonical = normalize_tag(tag)
        page = page.strip()
        if canonical not in self._tags_of.get(page, set()):
            return False
        self._tags_of[page].discard(canonical)
        if not self._tags_of[page]:
            del self._tags_of[page]
        self._pages_of[canonical].discard(page)
        if not self._pages_of[canonical]:
            del self._pages_of[canonical]
        self.version += 1
        return True

    def import_from_smr(self, smr, properties: List[str]) -> int:
        """Parser module: fetch property values from the SMR as tags.

        Only string-valued annotations become tags (a sampling rate of
        600 is not a topic). Returns the number of new assignments.
        """
        wanted = {prop.lower() for prop in properties}
        added = 0
        for title in smr.titles():
            for prop, value in smr.annotations(title):
                if prop.lower() in wanted and isinstance(value, str) and value.strip():
                    if self.create(title, value):
                        added += 1
        return added

    def import_assignments(self, assignments: List[Tuple[str, str]]) -> int:
        """Bulk-add ``(page, tag)`` pairs; returns how many were new."""
        return sum(1 for page, tag in assignments if self.create(page, tag))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def tags_of(self, page: str) -> List[str]:
        """The tags on ``page``, sorted."""
        return sorted(self._tags_of.get(page.strip(), set()))

    def pages_of(self, tag: str) -> List[str]:
        """The pages carrying ``tag``, sorted."""
        return sorted(self._pages_of.get(normalize_tag(tag), set()))

    def tags(self) -> List[str]:
        """Every distinct tag, sorted."""
        return sorted(self._pages_of)

    def counts(self) -> Dict[str, int]:
        """tag -> frequency ("the number of entries that are assigned")."""
        return {tag: len(pages) for tag, pages in self._pages_of.items()}

    def count(self, tag: str) -> int:
        """How many pages carry ``tag``."""
        return len(self._pages_of.get(normalize_tag(tag), set()))

    def top_tags(self, k: int) -> List[Tuple[str, int]]:
        """The ``k`` most-used tags as (tag, count), most used first."""
        ranked = Counter(self.counts())
        return sorted(ranked.items(), key=lambda item: (-item[1], item[0]))[:k]

    @property
    def tag_count(self) -> int:
        return len(self._pages_of)

    @property
    def assignment_count(self) -> int:
        return sum(len(tags) for tags in self._tags_of.values())
