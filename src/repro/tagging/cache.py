"""The Cache mechanism of the tagging pipeline (Fig. 4).

"A Cache mechanism is also implemented to decrease the number of
computations and data exchanges." This is a small LRU cache with optional
TTL. The clock is injectable (and defaults to a logical counter that
advances one tick per operation) so eviction behaviour is deterministic
and testable without real time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from repro import obs
from repro.errors import TaggingError

_MISSING = object()


@dataclass
class CacheStats:
    """Local hit/miss/eviction bookkeeping, bridged to the metrics registry.

    The attributes stay plain integers so the existing ``stats.hit_rate()``
    API keeps working; the cache *also* reports every event to the default
    :class:`~repro.obs.metrics.MetricsRegistry` under the cache's name, so
    hit rates appear in ``/metrics`` without polling these fields.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _LogicalClock:
    """Deterministic default time source: one tick per call."""

    def __init__(self):
        self._now = 0

    def __call__(self) -> float:
        self._now += 1
        return float(self._now)


class LruTtlCache:
    """LRU cache with per-entry time-to-live.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used is evicted.
    ttl:
        Entries older than this (in clock units) are treated as absent.
        ``None`` disables expiry.
    clock:
        A zero-argument callable returning the current time. The default
        logical clock makes behaviour fully deterministic.
    name:
        Label under which this cache reports to the metrics registry
        (``tagging_cache_*_total{cache=<name>}``).
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        name: str = "tagcloud",
    ):
        if capacity <= 0:
            raise TaggingError(f"cache capacity must be positive, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise TaggingError(f"cache ttl must be positive, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self.name = name
        self._clock = clock or _LogicalClock()
        self._entries: "OrderedDict[Hashable, tuple[Any, float]]" = OrderedDict()
        self.stats = CacheStats()

    def _bump(self, event: str) -> None:
        """Count ``event`` locally and in the default metrics registry."""
        setattr(self.stats, event, getattr(self.stats, event) + 1)
        obs.get_registry().counter(
            f"tagging_cache_{event}_total",
            f"Tagging cache {event} per cache name.",
            labels=("cache",),
        ).labels(self.name).inc()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key``, or ``default`` (counts a hit/miss)."""
        value = self._lookup(key)
        if value is _MISSING:
            self._bump("misses")
            return default
        self._bump("hits")
        return value

    def _lookup(self, key: Hashable) -> Any:
        entry = self._entries.get(key)
        if entry is None:
            return _MISSING
        value, stored_at = entry
        if self.ttl is not None and self._clock() - stored_at > self.ttl:
            del self._entries[key]
            return _MISSING
        self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, evicting LRU entries if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (value, self._clock())
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._bump("evictions")

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value or compute, store and return it."""
        value = self._lookup(key)
        if value is not _MISSING:
            self._bump("hits")
            return value
        self._bump("misses")
        value = compute()
        self.put(key, value)
        return value

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True if it existed."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()
