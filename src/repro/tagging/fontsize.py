"""The Font Size Calculation module — Eq. 6 of the paper, verbatim.

    s_i = ceil( c_i * omega(maxclique_i) / C
                + f_max * (t_i - t_min) / (t_max - t_min) )    for t_i > t_min
    s_i = 1                                                    otherwise

where ``s_i`` is the font size, ``f_max`` the maximum font size, ``t_i``
the count of the tag, ``c_i`` the number of cliques the tag belongs to,
``C`` the total number of cliques (always >= 1), ``omega(maxclique_i)``
the order (node count) of the largest clique containing the tag, and
``t_min`` / ``t_max`` the minimum / maximum tag frequencies.

Note the guard: when ``t_i == t_min`` the size is 1 regardless of clique
structure, so the degenerate all-equal-frequency corpus needs no special
division-by-zero handling.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List

from repro.errors import TaggingError
from repro.tagging.cliques import cliques_by_tag

DEFAULT_MAX_FONT = 7  # a conventional 7-step tag-cloud scale


def font_sizes(
    counts: Dict[str, int],
    cliques: List[FrozenSet[str]],
    max_font: int = DEFAULT_MAX_FONT,
) -> Dict[str, int]:
    """Apply Eq. 6 to every tag in ``counts``.

    ``cliques`` must cover every tag (isolated tags appear as singleton
    cliques, which :func:`~repro.tagging.cliques.bron_kerbosch`
    guarantees), keeping ``C >= 1`` as the paper requires.
    """
    if not counts:
        return {}
    if max_font < 1:
        raise TaggingError(f"max_font must be >= 1, got {max_font}")
    if not cliques:
        raise TaggingError("Eq. 6 requires at least one clique (C >= 1)")
    membership = cliques_by_tag(cliques)
    missing = [tag for tag in counts if tag not in membership]
    if missing:
        raise TaggingError(f"tags missing from the clique cover: {sorted(missing)[:5]}")
    t_min = min(counts.values())
    t_max = max(counts.values())
    total_cliques = len(cliques)
    sizes: Dict[str, int] = {}
    for tag, count in counts.items():
        if count <= t_min:
            sizes[tag] = 1
            continue
        tag_cliques = membership[tag]
        c_i = len(tag_cliques)
        omega = max(len(clique) for clique in tag_cliques)
        clique_term = c_i * omega / total_cliques
        frequency_term = max_font * (count - t_min) / (t_max - t_min)
        sizes[tag] = math.ceil(clique_term + frequency_term)
    return sizes
