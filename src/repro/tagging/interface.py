"""The Interface module (Fig. 4): the user-facing tagging commands.

"The Interface module provides the necessary commands in order to create
tags and to accept users' inputs for visualizing tag clouds." Cloud
construction goes through the Cache so repeated visualizations of an
unchanged store cost nothing — the cache key includes the store version,
so any tag mutation invalidates naturally.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import obs
from repro.tagging.cache import LruTtlCache
from repro.tagging.cloud import TagCloud, TagCloudBuilder
from repro.tagging.store import TagStore
from repro.text.tfidf import cosine_similarity


class TaggingSystem:
    """The assembled dynamic tagging system."""

    def __init__(
        self,
        store: Optional[TagStore] = None,
        builder: Optional[TagCloudBuilder] = None,
        cache: Optional[LruTtlCache] = None,
    ):
        self.store = store or TagStore()
        self.builder = builder or TagCloudBuilder()
        self.cache = cache or LruTtlCache(capacity=32)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def create_tag(self, page: str, tag: str) -> bool:
        """Tag a page (user command)."""
        return self.store.create(page, tag)

    def remove_tag(self, page: str, tag: str) -> bool:
        """Remove one tag assignment; True if it existed."""
        return self.store.remove(page, tag)

    def tags_of(self, page: str) -> List[str]:
        """The tags currently on ``page``, sorted."""
        return self.store.tags_of(page)

    def sync_from_smr(self, smr, properties: List[str]) -> int:
        """Parser command: pull property values from the SMR as tags."""
        with obs.get_tracer().span("tagging.parser", properties=list(properties)) as span:
            imported = self.store.import_from_smr(smr, properties)
            span.set_attribute("imported", imported)
        obs.get_registry().counter(
            "tagging_parser_imports_total", "Tags imported from the SMR by the Parser."
        ).inc(imported)
        obs.get_event_log().info(
            "tagging.parser", properties=list(properties), imported=imported
        )
        return imported

    # ------------------------------------------------------------------
    # Visualization input
    # ------------------------------------------------------------------

    def cloud(self, top: Optional[int] = None, min_count: int = 1) -> TagCloud:
        """Build (or fetch from cache) the current tag cloud.

        The pipeline stages are traced individually — ``tagging.cache``
        for the lookup, ``tagging.matrix`` for the similarity-matrix /
        clique build on a miss — under one ``tagging.cloud`` parent, the
        Fig. 4 Parser→Cache→Matrix structure made observable.
        """
        tracer = obs.get_tracer()
        event_log = obs.get_event_log()
        key = (self.store.version, top, min_count, self.builder.threshold, self.builder.max_font)
        with tracer.span("tagging.cloud", top=top, min_count=min_count) as span:
            with tracer.span("tagging.cache"):
                cached = self.cache.get(key)
            if cached is not None:
                span.set_attribute("cache", "hit")
                event_log.debug(
                    "tagging.cloud", cache="hit", entries=len(cached.entries)
                )
                return cached
            span.set_attribute("cache", "miss")
            with obs.time_block(
                obs.get_registry().histogram(
                    "tagging_cloud_build_seconds",
                    "Seconds spent building tag clouds on cache misses.",
                )
            ) as timer, tracer.span("tagging.matrix"):
                built = self.builder.build(self.store, top=top, min_count=min_count)
            self.cache.put(key, built)
            event_log.info(
                "tagging.cloud",
                cache="miss",
                entries=len(built.entries),
                cliques=len(built.cliques),
                seconds=timer.elapsed,
            )
            return built

    def trends(self, k: int = 10) -> List[Tuple[str, int]]:
        """The k most used tags — "the trends of metadata"."""
        return self.store.top_tags(k)

    def similar_pages(self, page: str, k: int = 5) -> List[Tuple[str, float]]:
        """Pages whose tag sets are most cosine-similar to ``page``'s.

        Rare shared tags weigh more: each tag contributes with weight
        1/frequency, so two pages sharing an unusual tag are more similar
        than two pages sharing a ubiquitous one.
        """
        own_tags = self.store.tags_of(page)
        if not own_tags:
            return []
        counts = self.store.counts()

        def vector(tags: List[str]) -> dict:
            return {tag: 1.0 / counts[tag] for tag in tags}

        own_vector = vector(own_tags)
        candidates = {
            other for tag in own_tags for other in self.store.pages_of(tag)
        }
        candidates.discard(page.strip())
        scored = [
            (other, cosine_similarity(own_vector, vector(self.store.tags_of(other))))
            for other in candidates
        ]
        scored = [(other, score) for other, score in scored if score > 0]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:k]
