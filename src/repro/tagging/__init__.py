"""The Dynamic Tagging System (paper, Section IV and Fig. 4).

The pipeline reproduces the architecture figure module for module:

    Interface -> Parser (SMR I/O) -> Cache -> Matrix Transformation
    (cosine similarity, 50 % threshold) -> Graph -> Max Clique
    (Bron-Kerbosch) -> Font Size Calculation (Eq. 6) -> tag cloud

- :mod:`repro.tagging.store` — tag storage + the Parser that fetches
  property values from the SMR as tags;
- :mod:`repro.tagging.cache` — the Cache mechanism (LRU + TTL);
- :mod:`repro.tagging.similarity` — the Matrix Transformation module;
- :mod:`repro.tagging.graphmod` — the Graph module;
- :mod:`repro.tagging.cliques` — Bron-Kerbosch with pivoting and
  degeneracy ordering;
- :mod:`repro.tagging.fontsize` — Eq. 6 verbatim;
- :mod:`repro.tagging.cloud` — the assembled tag cloud;
- :mod:`repro.tagging.interface` — the user-facing command surface.
"""

from repro.tagging.store import TagStore
from repro.tagging.cache import LruTtlCache
from repro.tagging.similarity import SimilarityMatrix, build_similarity
from repro.tagging.graphmod import TagGraph
from repro.tagging.cliques import bron_kerbosch, degeneracy_order
from repro.tagging.fontsize import font_sizes
from repro.tagging.cloud import TagCloud, TagCloudBuilder, TagEntry
from repro.tagging.interface import TaggingSystem

__all__ = [
    "TagStore",
    "LruTtlCache",
    "SimilarityMatrix",
    "build_similarity",
    "TagGraph",
    "bron_kerbosch",
    "degeneracy_order",
    "font_sizes",
    "TagCloud",
    "TagCloudBuilder",
    "TagEntry",
    "TaggingSystem",
]
