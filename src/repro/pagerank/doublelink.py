"""The double linking structure of the paper (Section III).

Every metadata page carries two kinds of links: ordinary web-page links and
semantic links induced by RDF properties. The paper extends PageRank "to
consider these two links simultaneously". We reproduce that by blending the
two row-normalized transition matrices,

    M = alpha * P_web + (1 - alpha) * P_sem,

with a per-page fallback: a page that has links of only one kind follows
that kind with probability 1 (otherwise blending with an all-zero row would
leak probability mass and silently demote such pages — the very problem the
paper calls "non-trivial": *not all of the metadata pages have semantic
attributes*). Pages with neither kind of link remain dangling and are
handled by the Eq. 1 correction.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import LinalgError
from repro.linalg import CooMatrix, CsrMatrix
from repro.pagerank.webgraph import LinkGraph, PageRankProblem


class DoubleLinkGraph:
    """A pair of link structures over the same set of pages.

    Parameters
    ----------
    web:
        The ordinary page-to-page link graph.
    semantic:
        The graph of semantic (RDF property) links.
    """

    def __init__(self, web: LinkGraph, semantic: LinkGraph):
        if web.n != semantic.n:
            raise LinalgError(
                f"both structures must cover the same pages: {web.n} vs {semantic.n}"
            )
        self.web = web
        self.semantic = semantic
        self.n = web.n

    def transition_matrix(self, alpha: float = 0.5) -> CsrMatrix:
        """Return the blended transition matrix ``M``.

        ``alpha`` is the weight of the *web* structure; ``alpha=1`` reduces
        exactly to classic PageRank over web links and ``alpha=0`` to
        semantic-only — at the extremes the per-page fallback is disabled,
        so the ablation variants are pure single-structure PageRank.
        """
        if not 0.0 <= alpha <= 1.0:
            raise LinalgError(f"alpha must lie in [0, 1], got {alpha}")
        if alpha == 1.0:
            return self.web.transition_matrix()
        if alpha == 0.0:
            return self.semantic.transition_matrix()
        coo = CooMatrix(self.n, self.n)
        for page in range(self.n):
            web_links = sorted(self.web.out_links(page))
            sem_links = sorted(self.semantic.out_links(page))
            web_weight, sem_weight = alpha, 1.0 - alpha
            if not web_links and sem_links:
                web_weight, sem_weight = 0.0, 1.0
            elif web_links and not sem_links:
                web_weight, sem_weight = 1.0, 0.0
            if web_links and web_weight:
                share = web_weight / len(web_links)
                for dst in web_links:
                    coo.add(page, dst, share)
            if sem_links and sem_weight:
                share = sem_weight / len(sem_links)
                for dst in sem_links:
                    coo.add(page, dst, share)
        return coo.to_csr()

    def to_problem(
        self,
        alpha: float = 0.5,
        teleport: float = 0.85,
        personalization: Optional[Sequence[float]] = None,
    ) -> PageRankProblem:
        """Build the :class:`PageRankProblem` for the blended structure."""
        return PageRankProblem(self.transition_matrix(alpha), teleport, personalization)

    def dangling_nodes(self) -> np.ndarray:
        """Pages with neither web nor semantic out-links."""
        return self.web.dangling_nodes() & self.semantic.dangling_nodes()

    def __repr__(self) -> str:
        return (
            f"DoubleLinkGraph(n={self.n}, web_edges={self.web.edge_count}, "
            f"semantic_edges={self.semantic.edge_count})"
        )


def combine_link_structures(
    web: LinkGraph,
    semantic: LinkGraph,
    alpha: float = 0.5,
    teleport: float = 0.85,
    personalization: Optional[Sequence[float]] = None,
) -> PageRankProblem:
    """One-call helper: blend two structures and return the PageRank problem."""
    return DoubleLinkGraph(web, semantic).to_problem(alpha, teleport, personalization)
