"""Incremental PageRank updates: localized residual-driven relaxation.

The paper's operational motivation for picking Gauss–Seidel is that
"Pagerank scores need to be updated regularly as new metadata pages are
continuously created" (Section III). When only a handful of pages changed,
even a warm-started full solve sweeps every row of the Eq. 5 system

    A y = b,   A = I - c Pᵀ,   b = u.

This module relaxes *only the rows that are actually wrong*. Starting from
the previous solution ``y``, the residual ``r = b - A y`` is non-zero
(above round-off) only near the edit: rows whose in-links changed, new
pages, and pages reachable from them. Repeatedly relaxing the dirtiest
rows,

    y_i += r_i / A_ii,   then   r_k += c P_ik (r_i / A_ii)  for k ≠ i,

is the Gauss–Southwell / "push" scheme of Gleich's PageRank literature
(the paper's reference [8] lineage). Each relaxation removes ``|r_i|``
from the residual 1-norm and re-injects at most ``c |r_i|`` (row ``i`` of
``P`` sums to at most one), so the total residual decays geometrically —
the same contraction argument that makes power iteration converge, but
paid only on the dirty set.

:class:`repro.core.ranking.PageRankRanker` uses :func:`refine_incremental`
for small deltas and falls back to a full warm-started Gauss–Seidel solve
past a dirty-fraction threshold or when the relaxation budget runs out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import LinalgError
from repro.pagerank.webgraph import PageRankProblem


@dataclass
class IncrementalResult:
    """Outcome of one localized refinement.

    ``relaxations`` counts single-row updates; ``sweep_equivalents``
    expresses the same work in full-matrix-sweep units (``relaxations/n``,
    rounded up) so it is directly comparable with the ``iterations`` of a
    cold or warm full solve.
    """

    relaxations: int
    dirty: int
    converged: bool
    final_residual: float
    #: Residual 1-norm sampled once per sweep-equivalent (every ``n``
    #: relaxations) plus the initial and final values — the incremental
    #: path's analogue of a solver's per-iteration residual series, fed
    #: to the shared convergence recorder for ``/debug/convergence``.
    residual_history: List[float] = field(default_factory=list)
    #: Dense row indices that were dirty at the start of the refinement —
    #: the initial work queue. ``repro.shard`` attributes these back to
    #: their owning shard for the per-shard dirty-page gauges.
    dirty_indices: List[int] = field(default_factory=list)

    def sweep_equivalents(self, n: int) -> int:
        """Relaxation work in full-sweep units: ``ceil(relaxations / n)``."""
        if n <= 0:
            return 0
        return max(1, -(-self.relaxations // n)) if self.relaxations else 0


def initial_residual(problem: PageRankProblem, y: np.ndarray) -> np.ndarray:
    """The Eq. 5 residual ``b - (I - c Pᵀ) y`` for a candidate ``y``.

    One transpose-product — the only O(nnz) cost of the incremental path;
    everything after is proportional to the dirty set.
    """
    y = np.asarray(y, dtype=float)
    if y.shape != (problem.n,):
        raise LinalgError(f"candidate must have length {problem.n}, got {y.shape}")
    return problem.personalization - y + problem.teleport * problem.transition.rmatvec(y)


def dirty_rows(residual: np.ndarray, rhs: np.ndarray, tol: float) -> np.ndarray:
    """Row indices whose residual exceeds the per-row convergence slice.

    The per-row threshold is ``tol * ||b||₁ / n``: once every row is below
    it, the residual 1-norm is below ``tol * ||b||₁``, matching the
    stopping convention of the stationary solvers.
    """
    n = residual.size
    rhs_norm = float(np.abs(rhs).sum()) or 1.0
    threshold = tol * rhs_norm / max(n, 1)
    return np.flatnonzero(np.abs(residual) > threshold)


def refine_incremental(
    problem: PageRankProblem,
    y: np.ndarray,
    tol: float = 1e-10,
    max_relaxations: Optional[int] = None,
    residual: Optional[np.ndarray] = None,
) -> IncrementalResult:
    """Refine ``y`` in place until ``||b - A y||₁ < tol * ||b||₁``.

    Parameters
    ----------
    y:
        Warm solution in the *linear-system gauge* (the un-normalized
        Eq. 5 vector, not the probability vector); modified in place.
    max_relaxations:
        Work budget in single-row updates; defaults to ``20 n``, beyond
        which a full sweep-based solve would have been cheaper anyway.
    residual:
        Pre-computed :func:`initial_residual`, to avoid doing the O(nnz)
        product twice when the caller already needed it for the
        dirty-fraction decision.
    """
    n = problem.n
    if max_relaxations is None:
        max_relaxations = 20 * n
    transition = problem.transition
    rhs = problem.personalization
    rhs_norm = float(np.abs(rhs).sum()) or 1.0
    threshold = tol * rhs_norm / max(n, 1)
    # Diagonal of A = I - c Pᵀ: unit except where P has self-links.
    diag = 1.0 - problem.teleport * transition.diagonal()
    r = initial_residual(problem, y) if residual is None else residual
    queue = deque(int(i) for i in np.flatnonzero(np.abs(r) > threshold))
    dirty = len(queue)
    dirty_indices = list(queue)
    in_queue = np.zeros(n, dtype=bool)
    in_queue[list(queue)] = True
    relaxations = 0
    # Sampling the norm every n relaxations keeps the bookkeeping O(1)
    # amortized per relaxation while still yielding one history point per
    # sweep-equivalent of work.
    history: List[float] = [float(np.abs(r).sum())]
    next_sample = n
    while queue and relaxations < max_relaxations:
        i = queue.popleft()
        in_queue[i] = False
        r_i = float(r[i])
        if abs(r_i) <= threshold:
            continue
        delta = r_i / diag[i]
        y[i] += delta
        r[i] = 0.0
        relaxations += 1
        if relaxations >= next_sample:
            history.append(float(np.abs(r).sum()))
            next_sample += n
        cols, vals = transition.row(i)
        if cols.size:
            off_diag = cols != i  # self-link effect already in diag[i]
            cols = cols[off_diag]
            if cols.size:
                r[cols] += problem.teleport * vals[off_diag] * delta
                woken = cols[(np.abs(r[cols]) > threshold) & ~in_queue[cols]]
                if woken.size:
                    in_queue[woken] = True
                    queue.extend(int(k) for k in woken)
    final = float(np.abs(r).sum())
    if not history or history[-1] != final:
        history.append(final)
    return IncrementalResult(
        relaxations=relaxations,
        dirty=dirty,
        converged=final < tol * rhs_norm,
        final_residual=final,
        residual_history=history,
        dirty_indices=dirty_indices,
    )
