"""Link graphs and the PageRank transition matrices of Eqs. 1–2.

A :class:`LinkGraph` stores a directed graph over ``n`` pages. From it we
derive the row-normalized transition matrix ``P`` (``P_ij = A_ij / deg(i)``),
the dangling-page indicator ``d`` (pages with no out-links), and — through
:class:`PageRankProblem` — the stochastic, irreducible operator

    P'' = c (P + d uᵀ) + (1 - c) e uᵀ

of Eq. 2 that every solver in :mod:`repro.pagerank.solvers` targets.
``P''`` is never materialized: its action on a vector is a sparse product
plus two rank-1 corrections.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import LinalgError
from repro.linalg import CooMatrix, CsrMatrix


class LinkGraph:
    """A directed graph over pages ``0 .. n-1``.

    Parallel edges collapse to a single link (the web adjacency matrix of
    the paper is 0/1); self-links are permitted but conventionally excluded
    by the generators.
    """

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]] = ()):
        if n < 0:
            raise LinalgError(f"node count must be non-negative, got {n}")
        self.n = n
        self._out: list[set[int]] = [set() for _ in range(n)]
        for src, dst in edges:
            self.add_edge(src, dst)

    def add_edge(self, src: int, dst: int) -> None:
        """Add the directed link ``src -> dst`` (idempotent)."""
        if not (0 <= src < self.n and 0 <= dst < self.n):
            raise LinalgError(f"edge ({src}, {dst}) outside graph of {self.n} nodes")
        self._out[src].add(dst)

    def out_links(self, node: int) -> frozenset[int]:
        """Return the set of pages ``node`` links to."""
        return frozenset(self._out[node])

    def out_degree(self, node: int) -> int:
        """Number of pages ``node`` links to."""
        return len(self._out[node])

    @property
    def edge_count(self) -> int:
        return sum(len(links) for links in self._out)

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Yield every ``(src, dst)`` link, sorted for determinism."""
        for src in range(self.n):
            for dst in sorted(self._out[src]):
                yield src, dst

    def dangling_nodes(self) -> np.ndarray:
        """Return the boolean dangling indicator ``d`` (no out-links)."""
        return np.array([len(links) == 0 for links in self._out], dtype=bool)

    def adjacency(self) -> CsrMatrix:
        """Return the 0/1 adjacency matrix ``A`` in CSR form."""
        coo = CooMatrix(self.n, self.n)
        for src, dst in self.edges():
            coo.add(src, dst, 1.0)
        return coo.to_csr()

    def transition_matrix(self) -> CsrMatrix:
        """Return ``P`` with ``P_ij = A_ij / deg(i)``; dangling rows stay zero."""
        coo = CooMatrix(self.n, self.n)
        for src in range(self.n):
            degree = len(self._out[src])
            if degree == 0:
                continue
            weight = 1.0 / degree
            for dst in sorted(self._out[src]):
                coo.add(src, dst, weight)
        return coo.to_csr()

    def reversed(self) -> "LinkGraph":
        """Return the graph with every edge direction flipped."""
        return LinkGraph(self.n, ((dst, src) for src, dst in self.edges()))

    def __repr__(self) -> str:
        return f"LinkGraph(n={self.n}, edges={self.edge_count})"


class PageRankProblem:
    """A fully specified PageRank instance (Eq. 2).

    Parameters
    ----------
    transition:
        Row-substochastic matrix ``P`` — row sums are 1 for pages with
        out-links and 0 for dangling pages.
    teleport:
        The coefficient ``c`` of Eq. 2; the paper uses ``0.85 <= c < 1``.
    personalization:
        The distribution ``u``; uniform ``1/n`` when omitted.
    """

    def __init__(
        self,
        transition: CsrMatrix,
        teleport: float = 0.85,
        personalization: Optional[Sequence[float]] = None,
    ):
        if transition.nrows != transition.ncols:
            raise LinalgError(f"transition matrix must be square, got {transition.shape}")
        if not 0.0 < teleport < 1.0:
            raise LinalgError(f"teleport coefficient must lie in (0, 1), got {teleport}")
        row_sums = transition.row_sums()
        if np.any(transition.data < -1e-12):
            raise LinalgError("transition matrix entries must be non-negative")
        if np.any(row_sums > 1.0 + 1e-9):
            raise LinalgError("transition matrix rows must sum to at most 1")
        self.transition = transition
        self.teleport = float(teleport)
        self.n = transition.nrows
        if personalization is None:
            if self.n == 0:
                raise LinalgError("cannot build a PageRank problem over zero pages")
            self.personalization = np.full(self.n, 1.0 / self.n)
        else:
            vec = np.asarray(personalization, dtype=float)
            if vec.shape != (self.n,):
                raise LinalgError(f"personalization must have length {self.n}, got {vec.shape}")
            if np.any(vec < 0) or not np.isclose(vec.sum(), 1.0):
                raise LinalgError("personalization must be a probability distribution")
            self.personalization = vec
        # Dangling rows are those whose transition row sums to ~0. The
        # flat index array makes the per-iteration dangling-mass gather a
        # short fancy-index instead of a full boolean scan — most pages
        # are not dangling, so this is the cheaper form on the hot path.
        self.dangling = row_sums < 1e-12
        self._dangling_idx = np.flatnonzero(self.dangling)
        self._transition_t = transition.transpose()

    @property
    def transition_t(self) -> CsrMatrix:
        """The cached transpose ``Pᵀ``.

        Built once at construction and shared: the linear-system solvers
        iterate on it, and row ``j`` of it is exactly the in-link list
        :mod:`repro.pagerank.contributions` reads to decompose page
        ``j``'s score.
        """
        return self._transition_t

    @classmethod
    def from_graph(
        cls,
        graph: LinkGraph,
        teleport: float = 0.85,
        personalization: Optional[Sequence[float]] = None,
    ) -> "PageRankProblem":
        """Build a problem straight from a :class:`LinkGraph`."""
        return cls(graph.transition_matrix(), teleport, personalization)

    def apply_google_matrix(
        self, x: np.ndarray, pool=None, chunks: Optional[int] = None
    ) -> np.ndarray:
        """Return ``(P'')ᵀ x`` — one power-iteration step (Eq. 3).

        Expanding Eq. 2,

            (P'')ᵀ x = c Pᵀ x + c (dᵀ x) u + (1 - c) (eᵀ x) u

        so the dangling and teleport corrections are rank-1 updates and the
        sparse structure of ``P`` is preserved.

        With ``chunks`` > 1 the sparse product is row-partitioned across
        the worker ``pool`` via :func:`repro.perf.pool.parallel_matvec` —
        worker processes over the matrix's shared-memory CSR slabs when
        the platform allows, the thread pool otherwise; each chunk runs
        the exact reduceat kernel of
        :meth:`~repro.linalg.sparse.CsrMatrix.matvec_rows`, so the result
        is bitwise identical to the serial product on every backend.
        """
        x = np.asarray(x, dtype=float)
        if chunks is not None and chunks > 1:
            from repro.perf.pool import parallel_matvec

            product = parallel_matvec(self._transition_t, x, chunks=chunks, pool=pool)
        else:
            product = self._transition_t.matvec(x)
        result = self.teleport * product
        dangling_mass = float(x[self._dangling_idx].sum())
        total_mass = float(x.sum())
        result += (self.teleport * dangling_mass + (1.0 - self.teleport) * total_mass) * self.personalization
        return result

    def residual(self, x: np.ndarray) -> float:
        """Return ``||(P'')ᵀ x - x||₁`` for a candidate solution ``x``."""
        x = np.asarray(x, dtype=float)
        return float(np.abs(self.apply_google_matrix(x) - x).sum())

    def __repr__(self) -> str:
        return (
            f"PageRankProblem(n={self.n}, c={self.teleport}, "
            f"dangling={int(self.dangling.sum())})"
        )
