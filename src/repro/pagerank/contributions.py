"""Per-page score provenance: where a PageRank score comes from.

The paper ranks metadata pages by the double-link PageRank metric
(Section III) but offers no way to ask *why* a page sits where it does.
At the converged solution the Eq. 2 fixed point

    x_j = c · Σ_i P_ij x_i  +  c · u_j · (dᵀx)  +  (1 - c) · u_j · (eᵀx)

splits every page's score into physically meaningful parts:

- one **in-link contribution** ``c · P_ij · x_i`` per page ``i`` linking
  to ``j`` — read straight off row ``j`` of the cached CSR transpose
  ``Pᵀ`` (the same array the solvers iterate on);
- the **dangling mass** ``c · u_j · (dᵀx)`` redistributed from pages
  with no out-links;
- the **teleport mass** ``(1 - c) · u_j · (eᵀx)`` every page receives
  unconditionally.

:func:`decompose_score` evaluates those terms for one page, keeps the
``top_k`` largest in-link contributions, folds the rest into a
``remainder`` and reports the leftover ``residual`` — the solver's
convergence slack, which tests pin below the reconstruction tolerance:
``teleport + dangling + Σ(top-k) + remainder + residual == score``
exactly, and the residual itself is bounded by the solve tolerance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import LinalgError
from repro.linalg import CsrMatrix
from repro.pagerank.webgraph import PageRankProblem


class ScoreDecomposition:
    """The provenance of one page's PageRank score.

    Attributes
    ----------
    index:
        Dense page index the decomposition describes.
    score:
        The page's converged PageRank value ``x_j``.
    teleport:
        Mass received via the ``(1 - c) u_j`` teleport term.
    dangling:
        Mass redistributed from dangling pages, ``c u_j (dᵀx)``.
    contributions:
        The ``top_k`` largest in-link contributions as
        ``(source_index, value)`` pairs, largest first (ties broken by
        source index for determinism).
    remainder:
        Sum of the in-link contributions *not* listed individually.
    residual:
        ``score - (teleport + dangling + Σ all contributions)`` — the
        solver's convergence slack at this row; ~0 at convergence.
    in_links:
        Total number of in-link contributions (listed + folded).
    """

    __slots__ = (
        "index", "score", "teleport", "dangling",
        "contributions", "remainder", "residual", "in_links",
    )

    def __init__(
        self,
        index: int,
        score: float,
        teleport: float,
        dangling: float,
        contributions: List[Tuple[int, float]],
        remainder: float,
        residual: float,
        in_links: int,
    ):
        self.index = index
        self.score = score
        self.teleport = teleport
        self.dangling = dangling
        self.contributions = contributions
        self.remainder = remainder
        self.residual = residual
        self.in_links = in_links

    def reconstructed(self) -> float:
        """The score rebuilt from its parts (equals ``score`` exactly)."""
        return (
            self.teleport
            + self.dangling
            + sum(value for _, value in self.contributions)
            + self.remainder
            + self.residual
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly rendering (indices only; callers attach titles)."""
        return {
            "index": self.index,
            "score": self.score,
            "teleport": self.teleport,
            "dangling": self.dangling,
            "contributions": [
                {"source": source, "value": value}
                for source, value in self.contributions
            ],
            "remainder": self.remainder,
            "residual": self.residual,
            "in_links": self.in_links,
        }


def decompose_score(
    problem: PageRankProblem,
    scores: np.ndarray,
    index: int,
    top_k: int = 5,
    transpose: Optional[CsrMatrix] = None,
) -> ScoreDecomposition:
    """Split ``scores[index]`` into its Eq. 2 fixed-point terms.

    ``scores`` must be the converged probability vector the problem was
    solved to (unit 1-norm); ``transpose`` defaults to the problem's
    cached ``Pᵀ``. The in-link contributions come from row ``index`` of
    ``Pᵀ`` — exactly the entries a solver sweep reads — so the
    decomposition costs O(in-degree) after the transpose is in hand.
    """
    x = np.asarray(scores, dtype=float)
    if x.shape != (problem.n,):
        raise LinalgError(
            f"scores must have length {problem.n}, got {x.shape}"
        )
    if not 0 <= index < problem.n:
        raise LinalgError(f"page index {index} out of range for n={problem.n}")
    if top_k < 0:
        raise LinalgError(f"top_k must be non-negative, got {top_k}")
    transpose = transpose if transpose is not None else problem.transition_t
    c = problem.teleport
    u_j = float(problem.personalization[index])
    total_mass = float(x.sum())
    dangling_mass = float(x[problem.dangling].sum()) if problem.dangling.any() else 0.0

    sources, weights = transpose.row(index)
    values = c * weights * x[sources]
    contribution_total = float(values.sum())
    # Sort by (-value, source) so equal contributions order deterministically.
    order = sorted(range(len(values)), key=lambda k: (-values[k], sources[k]))
    kept = order[:top_k]
    contributions = [(int(sources[k]), float(values[k])) for k in kept]
    remainder = contribution_total - sum(value for _, value in contributions)

    teleport_term = (1.0 - c) * u_j * total_mass
    dangling_term = c * u_j * dangling_mass
    score = float(x[index])
    residual = score - (teleport_term + dangling_term + contribution_total)
    return ScoreDecomposition(
        index=index,
        score=score,
        teleport=teleport_term,
        dangling=dangling_term,
        contributions=contributions,
        remainder=remainder,
        residual=residual,
        in_links=int(len(values)),
    )
