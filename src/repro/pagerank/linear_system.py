"""The linear-system formulation of PageRank (Eq. 5).

Eq. 4 of the paper rewrites the eigenproblem as

    [c Pᵀ + c (u dᵀ) + (1 - c)(u eᵀ)] x = x,

which Eq. 5 turns into the sparse linear system ``(I - c Pᵀ) x = k v``.
The rank-1 dangling term ``c u dᵀ`` does not need to appear in the system
matrix: as shown in Gleich's thesis (the paper's reference [8]), solving

    (I - c Pᵀ) y = u

and renormalizing ``y`` to unit 1-norm yields exactly the PageRank vector
for the strongly-preferential model in which dangling mass is redistributed
according to ``u``. The scalar ``k = (1 - c)||x|| + (dᵀx)`` of Eq. 5 is the
corresponding normalization constant. We therefore hand the solvers the
fixed system ``A y = u`` with ``A = I - c Pᵀ`` and normalize afterwards —
tests confirm agreement with power iteration on ``P''`` to solver tolerance.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.linalg import CsrMatrix, identity_csr
from repro.pagerank.webgraph import PageRankProblem


def build_linear_system(problem: PageRankProblem) -> Tuple[CsrMatrix, np.ndarray]:
    """Return ``(A, b)`` with ``A = I - c Pᵀ`` and ``b = u``.

    The returned matrix has a unit diagonal perturbed only where ``P`` has
    self-links, and is strictly diagonally dominant by columns for
    ``c < 1`` — which is what makes Jacobi and Gauss–Seidel converge.
    """
    n = problem.n
    scaled = problem.transition.transpose().scale(-problem.teleport)
    system = identity_csr(n).add(scaled)
    rhs = problem.personalization.copy()
    return system, rhs


def normalize_solution(problem: PageRankProblem, raw: np.ndarray) -> np.ndarray:
    """Rescale a raw linear-system solution to a probability vector.

    This applies the ``k`` of Eq. 5: the raw solution is proportional to
    the PageRank vector, so dividing by its 1-norm recovers it.
    """
    raw = np.asarray(raw, dtype=float)
    total = float(np.abs(raw).sum())
    if total == 0.0:
        # A zero solution can only come from a solver that never started;
        # fall back to the personalization vector rather than divide by 0.
        return problem.personalization.copy()
    return np.abs(raw) / total
