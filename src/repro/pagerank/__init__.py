"""PageRank over a double linking structure (paper, Section III).

The paper scores metadata pages with a PageRank extended to consider two
linking structures at once — ordinary wiki links and semantic (RDF property)
links — and evaluates several ways of solving it: as an eigensystem via power
iterations (Eq. 3) or as the linear system ``(I - cPᵀ)x = kv`` (Eq. 5) using
stationary and Krylov iterations. This package reproduces all of it:

- :mod:`repro.pagerank.webgraph` — link graphs, transition matrices, the
  dangling-node and teleportation fix-ups of Eqs. 1–2;
- :mod:`repro.pagerank.doublelink` — the combined web+semantic matrix;
- :mod:`repro.pagerank.linear_system` — the Eq. 5 system;
- :mod:`repro.pagerank.solvers` — power, Jacobi, Gauss–Seidel, SOR,
  GMRES(m), BiCGSTAB and Arnoldi, implemented from scratch;
- :mod:`repro.pagerank.convergence` — the Fig. 3 convergence/time study;
- :mod:`repro.pagerank.contributions` — per-page score provenance: the
  Eq. 2 fixed point split into in-link contributions, dangling and
  teleport mass ("why is this page ranked here").
"""

from repro.pagerank.webgraph import LinkGraph, PageRankProblem
from repro.pagerank.doublelink import DoubleLinkGraph, combine_link_structures
from repro.pagerank.linear_system import build_linear_system
from repro.pagerank.solvers import SOLVERS, SolverResult, solve_pagerank
from repro.pagerank.convergence import ConvergenceRecord, ConvergenceStudy
from repro.pagerank.contributions import ScoreDecomposition, decompose_score

__all__ = [
    "LinkGraph",
    "PageRankProblem",
    "DoubleLinkGraph",
    "combine_link_structures",
    "build_linear_system",
    "SOLVERS",
    "SolverResult",
    "solve_pagerank",
    "ConvergenceRecord",
    "ConvergenceStudy",
    "ScoreDecomposition",
    "decompose_score",
]
