"""The Fig. 3 study: convergence iterations and computation time per solver.

:class:`ConvergenceStudy` runs every (requested) solver on one or more
PageRank problems and collects :class:`ConvergenceRecord` rows — exactly the
series plotted in Fig. 3(a) (iterations to converge) and Fig. 3(b)
(wall-clock time). A cross-check verifies that all converged solvers agree
on the PageRank vector, so iteration counts are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import LinalgError
from repro.linalg import norm1
from repro.pagerank.solvers import SOLVERS, solve_pagerank
from repro.pagerank.webgraph import PageRankProblem


@dataclass(frozen=True)
class ConvergenceRecord:
    """One solver × problem measurement (a point in Fig. 3)."""

    solver: str
    problem_label: str
    n: int
    iterations: int
    matvecs: float
    elapsed: float
    final_residual: float
    converged: bool

    def as_row(self) -> Dict[str, object]:
        """Return the record as a plain dict (for tabular printing)."""
        return {
            "solver": self.solver,
            "problem": self.problem_label,
            "n": self.n,
            "iterations": self.iterations,
            "matvecs": self.matvecs,
            "time_s": round(self.elapsed, 6),
            "residual": self.final_residual,
            "converged": self.converged,
        }


class ConvergenceStudy:
    """Run a set of solvers over a set of problems and tabulate the results.

    Parameters
    ----------
    methods:
        Solver names to evaluate; defaults to every registered solver.
    tol, max_iter:
        Shared stopping criteria, as in the paper's evaluation.
    """

    def __init__(
        self,
        methods: Optional[Sequence[str]] = None,
        tol: float = 1e-8,
        max_iter: int = 2000,
    ):
        self.methods = list(methods) if methods is not None else sorted(SOLVERS)
        unknown = [m for m in self.methods if m not in SOLVERS]
        if unknown:
            raise LinalgError(f"unknown solvers requested: {unknown}")
        self.tol = tol
        self.max_iter = max_iter
        self.records: List[ConvergenceRecord] = []

    def run(self, problem: PageRankProblem, label: str = "") -> List[ConvergenceRecord]:
        """Evaluate every method on ``problem``; append and return the records."""
        rows: List[ConvergenceRecord] = []
        reference: Optional[np.ndarray] = None
        for method in self.methods:
            result = solve_pagerank(problem, method=method, tol=self.tol, max_iter=self.max_iter)
            rows.append(
                ConvergenceRecord(
                    solver=method,
                    problem_label=label or f"n={problem.n}",
                    n=problem.n,
                    iterations=result.iterations,
                    matvecs=result.matvecs,
                    elapsed=result.elapsed,
                    final_residual=result.final_residual,
                    converged=result.converged,
                )
            )
            if result.converged:
                if reference is None:
                    reference = result.scores
                else:
                    drift = norm1(result.scores - reference)
                    if drift > 1e-4:
                        raise LinalgError(
                            f"solver {method!r} disagrees with reference by {drift:.2e}; "
                            "the study would compare incomparable solutions"
                        )
        self.records.extend(rows)
        return rows

    def run_all(self, problems: Iterable[tuple[str, PageRankProblem]]) -> List[ConvergenceRecord]:
        """Evaluate every method on every labelled problem."""
        for label, problem in problems:
            self.run(problem, label=label)
        return self.records

    def iterations_series(self) -> Dict[str, List[int]]:
        """Fig. 3(a): solver -> iteration counts in run order."""
        series: Dict[str, List[int]] = {m: [] for m in self.methods}
        for record in self.records:
            series[record.solver].append(record.iterations)
        return series

    def time_series(self) -> Dict[str, List[float]]:
        """Fig. 3(b): solver -> elapsed seconds in run order."""
        series: Dict[str, List[float]] = {m: [] for m in self.methods}
        for record in self.records:
            series[record.solver].append(record.elapsed)
        return series

    def format_table(self) -> str:
        """Return the study as an aligned text table (one row per record)."""
        header = (
            f"{'solver':<14}{'problem':<16}{'n':>7}{'iters':>8}{'matvecs':>9}"
            f"{'time_s':>12}{'residual':>12}  ok"
        )
        lines = [header, "-" * len(header)]
        for record in self.records:
            lines.append(
                f"{record.solver:<14}{record.problem_label:<16}{record.n:>7}"
                f"{record.iterations:>8}{record.matvecs:>9.0f}"
                f"{record.elapsed:>12.6f}{record.final_residual:>12.2e}"
                f"  {'yes' if record.converged else 'NO'}"
            )
        return "\n".join(lines)
