"""Jacobi iterations for the Eq. 5 linear system.

Splitting ``A = D + R`` with ``D = diag(A)``, the update is

    x(k+1) = D⁻¹ (b - R x(k)) = x(k) + D⁻¹ (b - A x(k)),

which only needs one sparse product per sweep. Convergence follows from
the column diagonal dominance of ``I - cPᵀ`` for ``c < 1``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import LinalgError
from repro.linalg import norm1
from repro.pagerank.linear_system import build_linear_system, normalize_solution
from repro.pagerank.solvers.base import ResidualTracker, SolverResult, check_problem, register
from repro.pagerank.webgraph import PageRankProblem


@register("jacobi")
def solve_jacobi(
    problem: PageRankProblem,
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
) -> SolverResult:
    """Run Jacobi sweeps until the relative residual drops below ``tol``."""
    check_problem(problem)
    system, rhs = build_linear_system(problem)
    diag = system.diagonal()
    if np.any(np.abs(diag) < 1e-15):
        raise LinalgError("Jacobi requires a nonzero diagonal")
    inv_diag = 1.0 / diag  # hoisted: multiply per sweep instead of divide
    rhs_norm = norm1(rhs) or 1.0
    x = rhs.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
    tracker = ResidualTracker(tol)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        residual_vec = rhs - system.matvec(x)
        x = x + residual_vec * inv_diag
        if tracker.record(norm1(residual_vec) / rhs_norm):
            converged = True
            break
    return SolverResult(
        solver="jacobi",
        scores=normalize_solution(problem, x),
        iterations=iterations,
        residuals=tracker.residuals,
        converged=converged,
        elapsed=tracker.elapsed,
        matvecs=float(iterations),
    )
