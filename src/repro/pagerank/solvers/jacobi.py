"""Jacobi iterations for the Eq. 5 linear system.

Splitting ``A = D + R`` with ``D = diag(A)``, the update is

    x(k+1) = D⁻¹ (b - R x(k)) = x(k) + D⁻¹ (b - A x(k)),

which only needs one sparse product per sweep. Convergence follows from
the column diagonal dominance of ``I - cPᵀ`` for ``c < 1``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import LinalgError
from repro.linalg import norm1
from repro.pagerank.linear_system import build_linear_system, normalize_solution
from repro.pagerank.solvers.base import ResidualTracker, SolverResult, check_problem, register
from repro.pagerank.webgraph import PageRankProblem


@register("jacobi")
def solve_jacobi(
    problem: PageRankProblem,
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
    chunks: Optional[int] = None,
    pool=None,
) -> SolverResult:
    """Run Jacobi sweeps until the relative residual drops below ``tol``.

    Jacobi updates every row from the *previous* sweep's vector, so the
    sparse product row-partitions freely: ``chunks`` > 1 fans it across
    the worker ``pool`` via :func:`repro.perf.pool.parallel_matvec` —
    worker processes over shared-memory CSR slabs when available,
    threads otherwise — with bitwise-identical results on every backend
    (unlike Gauss–Seidel, whose in-sweep dependency keeps it serial —
    see :mod:`repro.pagerank.solvers.gauss_seidel`).
    """
    check_problem(problem)
    system, rhs = build_linear_system(problem)
    diag = system.diagonal()
    if np.any(np.abs(diag) < 1e-15):
        raise LinalgError("Jacobi requires a nonzero diagonal")
    inv_diag = 1.0 / diag  # hoisted: multiply per sweep instead of divide
    rhs_norm = norm1(rhs) or 1.0
    x = rhs.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
    tracker = ResidualTracker(tol)
    converged = False
    iterations = 0
    use_chunks = chunks is not None and chunks > 1
    if use_chunks:
        from repro.perf.pool import parallel_matvec
    for iterations in range(1, max_iter + 1):
        if use_chunks:
            product = parallel_matvec(system, x, chunks=chunks, pool=pool)
        else:
            product = system.matvec(x)
        residual_vec = rhs - product
        x = x + residual_vec * inv_diag
        if tracker.record(norm1(residual_vec) / rhs_norm):
            converged = True
            break
    return SolverResult(
        solver="jacobi",
        scores=normalize_solution(problem, x),
        iterations=iterations,
        residuals=tracker.residuals,
        converged=converged,
        elapsed=tracker.elapsed,
        matvecs=float(iterations),
    )
