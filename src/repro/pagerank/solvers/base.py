"""Shared plumbing for the PageRank solvers.

Every solver returns a :class:`SolverResult` carrying the normalized
PageRank vector together with its convergence history, so the Fig. 3
study can compare iteration counts and wall-clock times uniformly.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro import obs
from repro.errors import LinalgError
from repro.pagerank.webgraph import PageRankProblem


@dataclass
class SolverResult:
    """Outcome of one PageRank solve.

    Attributes
    ----------
    solver:
        Registry name of the solver that produced this result.
    scores:
        The PageRank vector, normalized to unit 1-norm.
    iterations:
        Number of iterations (sweeps for stationary methods, inner steps
        for Krylov methods) actually performed.
    residuals:
        Residual norm after each iteration; ``residuals[-1]`` is final.
    converged:
        Whether the residual dropped below the requested tolerance.
    elapsed:
        Wall-clock seconds spent inside the solver loop.
    matvecs:
        Matrix-vector-product equivalents performed — the standard
        machine-independent work measure for comparing solvers whose
        per-iteration costs differ (e.g. BiCGSTAB does two per step).
    """

    solver: str
    scores: np.ndarray
    iterations: int
    residuals: List[float] = field(default_factory=list)
    converged: bool = True
    elapsed: float = 0.0
    matvecs: float = 0.0

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("inf")

    def top_pages(self, k: int = 10) -> List[int]:
        """Return the indices of the ``k`` highest-scoring pages."""
        order = np.argsort(-self.scores, kind="stable")
        return [int(i) for i in order[:k]]


class ResidualTracker:
    """Accumulates per-iteration residuals and a stopwatch.

    The stopwatch starts at construction; :meth:`record` appends a residual
    and reports whether the tolerance has been met.
    """

    def __init__(self, tol: float):
        if tol <= 0:
            raise LinalgError(f"tolerance must be positive, got {tol}")
        self.tol = tol
        self.residuals: List[float] = []
        self._start = time.perf_counter()

    def record(self, residual: float) -> bool:
        """Append ``residual``; True when it is below the tolerance."""
        self.residuals.append(float(residual))
        return residual < self.tol

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start


SolverFn = Callable[..., SolverResult]

# Populated by each solver module via register(); consumed by solve_pagerank
# and the convergence study.
_REGISTRY: Dict[str, SolverFn] = {}


def _record_solve(name: str, result: SolverResult) -> None:
    """Report one finished solve to the default metrics registry.

    Instrumenting here — at the registry boundary — means every solver
    reports iterations, residuals and solve time uniformly, whichever
    path invoked it (``solve_pagerank``, the convergence study, direct
    module calls).
    """
    # The convergence recorder and event log are gated independently of
    # the registry: each checks its own enabled flag internally.
    obs.get_convergence_recorder().record(
        name,
        n=int(result.scores.size),
        iterations=result.iterations,
        converged=result.converged,
        elapsed=result.elapsed,
        residuals=result.residuals,
        matvecs=result.matvecs,
    )
    obs.get_event_log().debug(
        "pagerank.solve",
        solver=name,
        n=int(result.scores.size),
        iterations=result.iterations,
        converged=result.converged,
        seconds=result.elapsed,
        residual=result.final_residual,
    )
    registry = obs.get_registry()
    if not registry.enabled:
        return
    labels = ("solver",)
    registry.counter(
        "pagerank_solves_total", "PageRank solves completed per solver.", labels=labels
    ).labels(name).inc()
    registry.counter(
        "pagerank_iterations_total",
        "Cumulative solver iterations per solver.",
        labels=labels,
    ).labels(name).inc(result.iterations)
    registry.histogram(
        "pagerank_solve_seconds", "Wall-clock seconds per solve.", labels=labels
    ).labels(name).observe(result.elapsed)
    registry.gauge(
        "pagerank_last_residual", "Final residual of the most recent solve.", labels=labels
    ).labels(name).set(result.final_residual)
    if not result.converged:
        registry.counter(
            "pagerank_nonconverged_total",
            "Solves that exhausted the iteration budget.",
            labels=labels,
        ).labels(name).inc()


def register(name: str) -> Callable[[SolverFn], SolverFn]:
    """Class of decorators adding a solver function to the registry.

    The registered function is wrapped with observability: a
    ``pagerank.solve`` span plus per-solver counters/histograms recorded
    from the returned :class:`SolverResult`.
    """

    def decorator(fn: SolverFn) -> SolverFn:
        if name in _REGISTRY:
            raise LinalgError(f"solver {name!r} registered twice")

        @functools.wraps(fn)
        def instrumented(*args, **kwargs) -> SolverResult:
            with obs.get_tracer().span("pagerank.solve", solver=name) as span:
                result = fn(*args, **kwargs)
                span.set_attribute("iterations", result.iterations)
                span.set_attribute("converged", result.converged)
            _record_solve(name, result)
            return result

        _REGISTRY[name] = instrumented
        return instrumented

    return decorator


def registry() -> Dict[str, SolverFn]:
    """Return a copy of the name -> solver mapping."""
    return dict(_REGISTRY)


def check_problem(problem: PageRankProblem) -> None:
    """Reject degenerate problems before entering a solver loop."""
    if problem.n == 0:
        raise LinalgError("cannot run PageRank on an empty graph")
