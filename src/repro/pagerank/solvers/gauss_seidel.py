"""Gauss–Seidel iterations — the solver the paper ultimately deploys.

Section III: "The Gauss-Siedel method outperforms the others with respect
to the convergence iterations and computational efficiency. Thus, we use
that for the Pagerank Calculation module."

Each forward sweep updates the unknowns in place,

    x_i <- (b_i - sum_{j<i} a_ij x_j(new) - sum_{j>i} a_ij x_j(old)) / a_ii,

so fresh values are used immediately — the reason Gauss–Seidel roughly
halves the iteration count of Jacobi on PageRank systems.

Implementation: the sweep is *level-scheduled*. ``A = L + D + U`` is split
once; per sweep we form ``rhs' = b - U x_old`` with one sparse product and
then solve ``(D + L) x_new = rhs'`` by processing rows level by level in
the dependency DAG of ``L`` — rows within a level have no mutual
dependencies and are updated with vectorized gathers. This is the standard
sparse-triangular-solve technique and keeps a sweep within a small factor
of a plain matrix-vector product, so the Fig. 3(b) time comparison is
meaningful. A naive row-loop sweep (:func:`naive_sweep`) is kept as the
reference the tests check the scheduler against.

Stopping follows the PageRank convention for stationary methods:
``||x_new - x_old||_1 / ||b||_1 < tol`` — for Jacobi this quantity equals
the (diagonally scaled) residual, so iteration counts are comparable.

Why this solver takes no ``chunks``/``pool`` arguments while power and
Jacobi do: a Gauss–Seidel sweep is a loop-carried dependency — row ``i``
consumes the *same-sweep* updates of every row ``j < i`` it references —
so the sweep cannot be row-partitioned into independent chunks the way a
Jacobi product can. Splitting it anyway would silently compute a
different iteration (block-Jacobi with GS blocks), changing the
convergence behavior the paper's Fig. 3 comparison rests on. The level
scheduling above already extracts all the *safe* intra-sweep
parallelism, and does so with vectorized numpy gathers rather than
threads — the per-level work is far too fine-grained to win anything
from pool dispatch under the GIL.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import LinalgError
from repro.linalg import CsrMatrix, norm1
from repro.pagerank.linear_system import build_linear_system, normalize_solution
from repro.pagerank.solvers.base import ResidualTracker, SolverResult, check_problem, register
from repro.pagerank.webgraph import PageRankProblem

# One level: (rows, cols, vals, seg) where cols/vals are the strictly-lower
# entries of those rows concatenated and seg[k] is the position of entry k's
# row within ``rows``.
_Level = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def naive_sweep(system: CsrMatrix, rhs: np.ndarray, x: np.ndarray, relaxation: float = 1.0) -> None:
    """Reference forward Gauss–Seidel/SOR sweep: plain row loop, in place.

    Kept for testing the level-scheduled sweeper; quadratic-ish constant
    factors make it unsuitable for benchmarking.
    """
    indptr, indices, data = system.indptr, system.indices, system.data
    for i in range(system.nrows):
        start, stop = indptr[i], indptr[i + 1]
        cols = indices[start:stop]
        vals = data[start:stop]
        diag = 0.0
        acc = 0.0
        for col, val in zip(cols, vals):
            if col == i:
                diag = val
            else:
                acc += val * x[col]
        if diag == 0.0:
            raise LinalgError(f"zero diagonal at row {i}; Gauss-Seidel undefined")
        gs_value = (rhs[i] - acc) / diag
        x[i] = (1.0 - relaxation) * x[i] + relaxation * gs_value


class TriangularSweeper:
    """Level-scheduled forward Gauss–Seidel/SOR sweeps over a CSR system."""

    def __init__(self, system: CsrMatrix):
        if system.nrows != system.ncols:
            raise LinalgError(f"Gauss-Seidel needs a square system, got {system.shape}")
        n = system.nrows
        row_of = np.repeat(np.arange(n), np.diff(system.indptr))
        lower_mask = system.indices < row_of
        upper_mask = system.indices > row_of
        diag_mask = system.indices == row_of
        self.diag = np.zeros(n)
        self.diag[row_of[diag_mask]] = system.data[diag_mask]
        if np.any(np.abs(self.diag) < 1e-15):
            raise LinalgError("zero diagonal entry; Gauss-Seidel undefined")
        self.upper = CsrMatrix.from_coo_arrays(
            n, n, row_of[upper_mask], system.indices[upper_mask], system.data[upper_mask]
        )
        lower = CsrMatrix.from_coo_arrays(
            n, n, row_of[lower_mask], system.indices[lower_mask], system.data[lower_mask]
        )
        self._levels = self._schedule(lower)
        self.n = n

    @staticmethod
    def _schedule(lower: CsrMatrix) -> List[_Level]:
        """Group rows into dependency levels of the strictly-lower part."""
        n = lower.nrows
        level_of = np.zeros(n, dtype=np.int64)
        for i in range(n):
            cols, _ = lower.row(i)
            if cols.size:
                level_of[i] = level_of[cols].max() + 1
        levels: List[_Level] = []
        max_level = int(level_of.max()) if n else -1
        for lv in range(max_level + 1):
            rows = np.nonzero(level_of == lv)[0]
            cols_parts: list[np.ndarray] = []
            vals_parts: list[np.ndarray] = []
            seg_parts: list[np.ndarray] = []
            for pos, row in enumerate(rows):
                cols, vals = lower.row(int(row))
                if cols.size:
                    cols_parts.append(cols)
                    vals_parts.append(vals)
                    seg_parts.append(np.full(cols.size, pos, dtype=np.int64))
            cols_flat = np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=np.int64)
            vals_flat = np.concatenate(vals_parts) if vals_parts else np.empty(0)
            seg_flat = np.concatenate(seg_parts) if seg_parts else np.empty(0, dtype=np.int64)
            levels.append((rows, cols_flat, vals_flat, seg_flat))
        return levels

    @property
    def level_count(self) -> int:
        return len(self._levels)

    def sweep(self, x: np.ndarray, rhs: np.ndarray, relaxation: float = 1.0) -> float:
        """Perform one forward sweep in place (``relaxation=1`` → plain GS).

        Returns ``||Δx||₁`` of the sweep, accumulated level by level, so
        the convergence test costs nothing extra — the solvers previously
        copied the full iterate every sweep just to measure this.
        """
        rhs_prime = rhs - self.upper.matvec(x)
        x_old = x.copy() if relaxation != 1.0 else None
        delta = 0.0
        for rows, cols, vals, seg in self._levels:
            if cols.size:
                contrib = np.bincount(seg, weights=vals * x[cols], minlength=rows.size)
            else:
                contrib = np.zeros(rows.size)
            gs_values = (rhs_prime[rows] - contrib) / self.diag[rows]
            if x_old is None:
                delta += float(np.abs(gs_values - x[rows]).sum())
                x[rows] = gs_values
            else:
                relaxed = (1.0 - relaxation) * x_old[rows] + relaxation * gs_values
                delta += float(np.abs(relaxed - x[rows]).sum())
                x[rows] = relaxed
        return delta


@register("gauss_seidel")
def solve_gauss_seidel(
    problem: PageRankProblem,
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
) -> SolverResult:
    """Run forward Gauss–Seidel sweeps until ``||Δx||₁ / ||b||₁ < tol``."""
    check_problem(problem)
    system, rhs = build_linear_system(problem)
    sweeper = TriangularSweeper(system)
    rhs_norm = norm1(rhs) or 1.0
    x = rhs.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
    tracker = ResidualTracker(tol)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        delta = sweeper.sweep(x, rhs)
        if tracker.record(delta / rhs_norm):
            converged = True
            break
    return SolverResult(
        solver="gauss_seidel",
        scores=normalize_solution(problem, x),
        iterations=iterations,
        residuals=tracker.residuals,
        converged=converged,
        elapsed=tracker.elapsed,
        matvecs=float(iterations),  # one U-product + one L-traversal ≈ one matvec
    )
