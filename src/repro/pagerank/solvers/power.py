"""Power iteration on the Google matrix (Eq. 3 of the paper).

The iterates follow ``x(k+1) = (P'')ᵀ x(k)``; because ``P''`` is
row-stochastic the 1-norm of the iterate is preserved, so no per-step
renormalization is required and the residual is simply the 1-norm
difference between consecutive iterates (the classic PageRank criterion).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg import norm1
from repro.pagerank.solvers.base import ResidualTracker, SolverResult, check_problem, register
from repro.pagerank.webgraph import PageRankProblem


@register("power")
def solve_power(
    problem: PageRankProblem,
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
    chunks: Optional[int] = None,
    pool=None,
) -> SolverResult:
    """Run power iterations until ``||x(k+1) - x(k)||₁ < tol``.

    ``chunks`` > 1 row-partitions each step's sparse product across the
    worker ``pool`` (:func:`repro.perf.pool.parallel_matvec` — worker
    *processes* over shared-memory CSR slabs when the platform allows,
    threads otherwise); the chunk kernel is bitwise identical to the
    serial one, so the iterate sequence — and therefore the residual
    history — does not change on any backend.
    """
    check_problem(problem)
    x = problem.personalization.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
    total = norm1(x)
    if total > 0:
        x /= total
    tracker = ResidualTracker(tol)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        x_next = problem.apply_google_matrix(x, pool=pool, chunks=chunks)
        residual = norm1(x_next - x)
        x = x_next
        if tracker.record(residual):
            converged = True
            break
    # Guard against drift introduced by floating-point accumulation.
    x = np.abs(x)
    x /= x.sum()
    return SolverResult(
        solver="power",
        scores=x,
        iterations=iterations,
        residuals=tracker.residuals,
        converged=converged,
        elapsed=tracker.elapsed,
        matvecs=float(iterations),
    )
