"""The solver suite evaluated in Fig. 3 of the paper.

Importing this package registers every solver; :data:`SOLVERS` maps the
registry names to solver functions and :func:`solve_pagerank` dispatches
by name. All solvers share the signature

    solve(problem, tol=1e-8, max_iter=1000, x0=None, **method_specific)

and return a :class:`~repro.pagerank.solvers.base.SolverResult`.
"""

from repro.errors import LinalgError
from repro.pagerank.solvers.base import SolverResult, registry
from repro.pagerank.solvers import (  # noqa: F401  (imports register the solvers)
    arnoldi,
    bicgstab,
    extrapolated,
    gauss_seidel,
    gmres,
    jacobi,
    power,
    sor,
)
from repro.pagerank.webgraph import PageRankProblem

SOLVERS = registry()

__all__ = ["SOLVERS", "SolverResult", "solve_pagerank"]


def solve_pagerank(
    problem: PageRankProblem,
    method: str = "gauss_seidel",
    tol: float = 1e-8,
    max_iter: int = 1000,
    **kwargs,
) -> SolverResult:
    """Solve ``problem`` with the named method.

    ``gauss_seidel`` is the default because it is the method the paper
    selects for its production Pagerank Calculation module.

    Raises
    ------
    LinalgError
        If ``method`` is not a registered solver name.
    """
    try:
        solver = SOLVERS[method]
    except KeyError:
        known = ", ".join(sorted(SOLVERS))
        raise LinalgError(f"unknown solver {method!r}; known solvers: {known}") from None
    return solver(problem, tol=tol, max_iter=max_iter, **kwargs)
