"""Restarted GMRES — Generalized Minimum Residual (paper, Section III).

GMRES(m) builds an m-dimensional Krylov basis with modified Gram–Schmidt
Arnoldi, reduces the small least-squares problem with Givens rotations, and
restarts from the current iterate. The residual norm is available for free
from the rotated right-hand side after every inner step, so the iteration
count recorded here matches what Fig. 3(a) plots: total inner iterations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import LinalgError
from repro.linalg import norm1, norm2
from repro.pagerank.linear_system import build_linear_system, normalize_solution
from repro.pagerank.solvers.base import ResidualTracker, SolverResult, check_problem, register
from repro.pagerank.webgraph import PageRankProblem


def _givens(a: float, b: float) -> Tuple[float, float]:
    """Return ``(c, s)`` zeroing ``b`` in ``[[c, s], [-s, c]] @ [a, b]``."""
    if b == 0.0:
        return 1.0, 0.0
    if abs(b) > abs(a):
        t = a / b
        s = 1.0 / np.sqrt(1.0 + t * t)
        return t * s, s
    t = b / a
    c = 1.0 / np.sqrt(1.0 + t * t)
    return c, t * c


@register("gmres")
def solve_gmres(
    problem: PageRankProblem,
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
    restart: int = 30,
) -> SolverResult:
    """Run GMRES(restart) on ``(I - cPᵀ) x = u`` until convergence."""
    check_problem(problem)
    if restart < 1:
        raise LinalgError(f"restart length must be >= 1, got {restart}")
    system, rhs = build_linear_system(problem)
    n = problem.n
    rhs_norm = norm2(rhs) or 1.0
    rhs_norm1 = norm1(rhs) or 1.0
    x = rhs.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
    tracker = ResidualTracker(tol)
    converged = False
    total_iterations = 0

    while total_iterations < max_iter and not converged:
        residual_vec = rhs - system.matvec(x)
        beta = norm2(residual_vec)
        if beta / rhs_norm < tol:
            # Record so callers always see at least one residual entry.
            converged = tracker.record(norm1(residual_vec) / rhs_norm1)
            break
        m = min(restart, max_iter - total_iterations)
        basis = np.zeros((m + 1, n))
        hessenberg = np.zeros((m + 1, m))
        basis[0] = residual_vec / beta
        # Rotated right-hand side of the least-squares problem.
        g = np.zeros(m + 1)
        g[0] = beta
        cs = np.zeros(m)
        sn = np.zeros(m)
        inner_used = 0
        for j in range(m):
            w = system.matvec(basis[j])
            for i in range(j + 1):
                hessenberg[i, j] = float(w @ basis[i])
                w -= hessenberg[i, j] * basis[i]
            hessenberg[j + 1, j] = norm2(w)
            breakdown = hessenberg[j + 1, j] < 1e-14
            if not breakdown:
                basis[j + 1] = w / hessenberg[j + 1, j]
            # Apply previous Givens rotations to the new column.
            for i in range(j):
                temp = cs[i] * hessenberg[i, j] + sn[i] * hessenberg[i + 1, j]
                hessenberg[i + 1, j] = -sn[i] * hessenberg[i, j] + cs[i] * hessenberg[i + 1, j]
                hessenberg[i, j] = temp
            cs[j], sn[j] = _givens(hessenberg[j, j], hessenberg[j + 1, j])
            hessenberg[j, j] = cs[j] * hessenberg[j, j] + sn[j] * hessenberg[j + 1, j]
            hessenberg[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            inner_used = j + 1
            total_iterations += 1
            estimated = abs(g[j + 1]) / rhs_norm
            if tracker.record(estimated):
                converged = True
                break
            if breakdown:
                # Exact solution found inside the Krylov space.
                converged = True
                break
        # Solve the triangular system and update the iterate.
        k = inner_used
        y = np.zeros(k)
        for i in range(k - 1, -1, -1):
            y[i] = (g[i] - hessenberg[i, i + 1 : k] @ y[i + 1 : k]) / hessenberg[i, i]
        x = x + basis[:k].T @ y

    final = norm1(rhs - system.matvec(x)) / rhs_norm1
    if tracker.residuals:
        tracker.residuals[-1] = final
    else:
        tracker.record(final)
    converged = converged or final < tol
    return SolverResult(
        solver="gmres",
        scores=normalize_solution(problem, x),
        iterations=total_iterations,
        residuals=tracker.residuals,
        converged=converged,
        elapsed=tracker.elapsed,
        matvecs=float(total_iterations),  # one product per inner Arnoldi step
    )
