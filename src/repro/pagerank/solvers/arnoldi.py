"""Restarted Arnoldi iterations for the PageRank eigensystem.

The paper lists "Arnoldi iterations" among the evaluated methods. Here the
eigenproblem ``(P'')ᵀ x = x`` (Eq. 3) is attacked directly: an m-step
Arnoldi factorization of the Google operator yields a small upper-Hessenberg
matrix whose Ritz pair closest to eigenvalue 1 approximates the PageRank
vector; the process restarts from the Ritz vector until the eigen-residual
``||(P'')ᵀ x - x||₁`` meets the tolerance. Iterations are counted as total
Arnoldi steps (operator applications), comparable with the other methods.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import LinalgError
from repro.linalg import norm2
from repro.pagerank.solvers.base import ResidualTracker, SolverResult, check_problem, register
from repro.pagerank.webgraph import PageRankProblem


@register("arnoldi")
def solve_arnoldi(
    problem: PageRankProblem,
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
    subspace: int = 10,
) -> SolverResult:
    """Run restarted Arnoldi with an ``subspace``-dimensional Krylov basis."""
    check_problem(problem)
    if subspace < 2:
        raise LinalgError(f"Arnoldi subspace must be >= 2, got {subspace}")
    n = problem.n
    m = min(subspace, n)
    x = problem.personalization.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
    x /= norm2(x) or 1.0
    tracker = ResidualTracker(tol)
    converged = False
    total_steps = 0

    while total_steps < max_iter and not converged:
        basis = np.zeros((m + 1, n))
        hessenberg = np.zeros((m + 1, m))
        basis[0] = x / (norm2(x) or 1.0)
        steps_this_cycle = 0
        for j in range(m):
            if total_steps >= max_iter:
                break
            w = problem.apply_google_matrix(basis[j])
            for i in range(j + 1):
                hessenberg[i, j] = float(w @ basis[i])
                w -= hessenberg[i, j] * basis[i]
            hessenberg[j + 1, j] = norm2(w)
            steps_this_cycle = j + 1
            total_steps += 1
            if hessenberg[j + 1, j] < 1e-14:
                break
            basis[j + 1] = w / hessenberg[j + 1, j]
        k = steps_this_cycle
        if k == 0:
            break
        # Ritz pair of the small Hessenberg block closest to eigenvalue 1.
        small = hessenberg[:k, :k]
        eigvals, eigvecs = np.linalg.eig(small)
        best = int(np.argmin(np.abs(eigvals - 1.0)))
        ritz = np.real(basis[:k].T @ eigvecs[:, best])
        ritz = np.abs(ritz)
        total = ritz.sum()
        if total == 0.0:
            break
        x = ritz / total
        residual = problem.residual(x)
        if tracker.record(residual):
            converged = True
    return SolverResult(
        solver="arnoldi",
        scores=x,
        iterations=total_steps,
        residuals=tracker.residuals,
        converged=converged,
        elapsed=tracker.elapsed,
        matvecs=float(total_steps),  # plus one residual check per restart
    )
