"""Power iteration with periodic Aitken extrapolation.

Kamvar et al.'s extrapolation methods accelerate PageRank's power
iteration by periodically removing the estimated contribution of the
second eigenvector. Every ``period`` steps the component-wise Aitken
Δ² update

    x* = x2 - (x2 - x1)² / (x2 - 2 x1 + x0)

is applied using the last three iterates, after which plain power steps
continue from the (renormalized) extrapolant. On slowly-mixing graphs
(λ₂ ≈ c) this cuts iterations substantially; on fast-mixing graphs it
degenerates gracefully to plain power iteration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import LinalgError
from repro.linalg import norm1
from repro.pagerank.solvers.base import ResidualTracker, SolverResult, check_problem, register
from repro.pagerank.webgraph import PageRankProblem


@register("power_extrapolated")
def solve_power_extrapolated(
    problem: PageRankProblem,
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
    period: int = 10,
) -> SolverResult:
    """Power iteration with Aitken Δ² extrapolation every ``period`` steps."""
    check_problem(problem)
    if period < 3:
        raise LinalgError(f"extrapolation period must be >= 3, got {period}")
    x = problem.personalization.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
    total = norm1(x)
    if total > 0:
        x /= total
    tracker = ResidualTracker(tol)
    converged = False
    iterations = 0
    extra_matvecs = 0
    history = [x.copy()]
    for iterations in range(1, max_iter + 1):
        x_next = problem.apply_google_matrix(x)
        residual = norm1(x_next - x)
        x = x_next
        history.append(x.copy())
        if len(history) > 3:
            history.pop(0)
        if tracker.record(residual):
            converged = True
            break
        if iterations % period == 0 and len(history) == 3:
            candidate = _aitken(history[0], history[1], history[2])
            # Safeguard: only accept the extrapolant if it actually has a
            # smaller residual than the current iterate (costs one product).
            extra_matvecs += 1
            if problem.residual(candidate) < residual:
                x = candidate
                history = [x.copy()]
    x = np.abs(x)
    x /= x.sum()
    return SolverResult(
        solver="power_extrapolated",
        scores=x,
        iterations=iterations,
        residuals=tracker.residuals,
        converged=converged,
        elapsed=tracker.elapsed,
        matvecs=float(iterations + extra_matvecs),
    )


def _aitken(x0: np.ndarray, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Component-wise Aitken Δ², guarded against tiny denominators."""
    numerator = (x2 - x1) ** 2
    denominator = x2 - 2.0 * x1 + x0
    safe = np.abs(denominator) > 1e-14
    extrapolated = x2.copy()
    extrapolated[safe] -= numerator[safe] / denominator[safe]
    # Extrapolation can momentarily leave the simplex; project back.
    extrapolated = np.clip(extrapolated, 0.0, None)
    total = extrapolated.sum()
    if total <= 0.0:
        return x2
    return extrapolated / total
