"""Successive over-relaxation (SOR) for the Eq. 5 linear system.

SOR generalizes Gauss–Seidel with a relaxation parameter omega; the paper's
reference [10] (Axelsson, *Iterative Solution Methods*) covers it alongside
the other stationary schemes. On PageRank systems mild over-relaxation
(omega slightly above 1) can shave iterations off Gauss–Seidel; omega = 1
recovers it exactly. The sweep reuses the level-scheduled
:class:`~repro.pagerank.solvers.gauss_seidel.TriangularSweeper`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import LinalgError
from repro.linalg import norm1
from repro.pagerank.linear_system import build_linear_system, normalize_solution
from repro.pagerank.solvers.base import ResidualTracker, SolverResult, check_problem, register
from repro.pagerank.solvers.gauss_seidel import TriangularSweeper
from repro.pagerank.webgraph import PageRankProblem


@register("sor")
def solve_sor(
    problem: PageRankProblem,
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
    omega: float = 1.05,
) -> SolverResult:
    """Run SOR sweeps with relaxation ``omega`` until ``||Δx||₁/||b||₁ < tol``."""
    check_problem(problem)
    if not 0.0 < omega < 2.0:
        raise LinalgError(f"SOR requires omega in (0, 2), got {omega}")
    system, rhs = build_linear_system(problem)
    sweeper = TriangularSweeper(system)
    rhs_norm = norm1(rhs) or 1.0
    x = rhs.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
    tracker = ResidualTracker(tol)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        delta = sweeper.sweep(x, rhs, relaxation=omega)
        if tracker.record(delta / rhs_norm):
            converged = True
            break
    return SolverResult(
        solver="sor",
        scores=normalize_solution(problem, x),
        iterations=iterations,
        residuals=tracker.residuals,
        converged=converged,
        elapsed=tracker.elapsed,
        matvecs=float(iterations),
    )
