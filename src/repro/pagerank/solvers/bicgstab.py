"""BiCGSTAB — Biconjugate Gradient Stabilized (paper, Section III).

The standard van der Vorst recurrence for nonsymmetric systems: each
iteration performs two sparse products and smooths the erratic BiCG
residual with a local minimal-residual step. Breakdowns (``rho`` or
``omega`` collapsing to zero) restart the recurrence from the current
residual instead of aborting, which is the usual practical remedy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg import norm1
from repro.pagerank.linear_system import build_linear_system, normalize_solution
from repro.pagerank.solvers.base import ResidualTracker, SolverResult, check_problem, register
from repro.pagerank.webgraph import PageRankProblem

_BREAKDOWN = 1e-30


@register("bicgstab")
def solve_bicgstab(
    problem: PageRankProblem,
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
) -> SolverResult:
    """Run BiCGSTAB on ``(I - cPᵀ) x = u`` until the relative residual < ``tol``."""
    check_problem(problem)
    system, rhs = build_linear_system(problem)
    rhs_norm = norm1(rhs) or 1.0
    x = rhs.copy() if x0 is None else np.asarray(x0, dtype=float).copy()
    r = rhs - system.matvec(x)
    r_hat = r.copy()
    rho_prev = alpha = omega = 1.0
    v = np.zeros_like(r)
    p = np.zeros_like(r)
    tracker = ResidualTracker(tol)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        rho = float(r_hat @ r)
        if abs(rho) < _BREAKDOWN or abs(omega) < _BREAKDOWN:
            # Restart: the recurrence lost biorthogonality.
            r = rhs - system.matvec(x)
            r_hat = r.copy()
            rho_prev = alpha = omega = 1.0
            v[:] = 0.0
            p[:] = 0.0
            rho = float(r_hat @ r)
            if abs(rho) < _BREAKDOWN:
                break
        beta = (rho / rho_prev) * (alpha / omega)
        p = r + beta * (p - omega * v)
        v = system.matvec(p)
        denom = float(r_hat @ v)
        if abs(denom) < _BREAKDOWN:
            break
        alpha = rho / denom
        s = r - alpha * v
        if tracker.record(norm1(s) / rhs_norm):
            x = x + alpha * p
            converged = True
            break
        t = system.matvec(s)
        tt = float(t @ t)
        omega = float(t @ s) / tt if tt > _BREAKDOWN else 0.0
        x = x + alpha * p + omega * s
        r = s - omega * t
        rho_prev = rho
        tracker.residuals[-1] = norm1(r) / rhs_norm
        if tracker.residuals[-1] < tol:
            converged = True
            break
    return SolverResult(
        solver="bicgstab",
        scores=normalize_solution(problem, x),
        iterations=iterations,
        residuals=tracker.residuals,
        converged=converged,
        elapsed=tracker.elapsed,
        matvecs=2.0 * iterations,  # two sparse products per BiCGSTAB step
    )
