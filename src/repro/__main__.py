"""``python -m repro`` — delegates to :mod:`repro.cli`."""

from repro.cli import main

raise SystemExit(main())
