"""Exception hierarchy shared across the repro packages.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch a single base class at the system boundary (the web API does exactly
that) while still being able to discriminate failures per substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class LinalgError(ReproError):
    """Invalid shapes, singular systems, or malformed sparse structures."""


class ConvergenceError(ReproError):
    """An iterative solver exhausted its iteration budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        The residual norm at the moment of failure.
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("inf")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class RelationalError(ReproError):
    """Base class for relational-engine errors."""


class SqlSyntaxError(RelationalError):
    """The SQL text could not be tokenized or parsed."""


class CatalogError(RelationalError):
    """Unknown or duplicate table/column/index."""


class IntegrityError(RelationalError):
    """Constraint violation (type mismatch, NOT NULL, duplicate key)."""


class RdfError(ReproError):
    """Base class for RDF store errors."""


class TurtleSyntaxError(RdfError):
    """Malformed Turtle input."""


class SparqlSyntaxError(RdfError):
    """The SPARQL text could not be tokenized or parsed."""


class WikiError(ReproError):
    """Semantic-wiki layer errors (missing pages, bad titles)."""


class SmrError(ReproError):
    """Sensor Metadata Repository errors."""


class BulkLoadError(SmrError):
    """A bulk-load record failed validation or parsing.

    Attributes
    ----------
    row:
        1-based index of the offending record, or 0 when unknown.
    """

    def __init__(self, message: str, row: int = 0):
        super().__init__(message)
        self.row = row


class QueryError(ReproError):
    """Invalid search query (unknown property, bad operator, privileges)."""


class AccessDeniedError(QueryError):
    """The user lacks the privilege required by the query."""


class TaggingError(ReproError):
    """Dynamic tagging system errors."""


class VizError(ReproError):
    """Visualization toolkit errors (bad dimensions, empty series)."""


class ObservabilityError(ReproError):
    """Metrics/tracing misuse (bad metric names, label mismatches)."""
