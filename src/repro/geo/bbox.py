"""Axis-aligned geographic bounding boxes.

Used by map-based browsing ("show me stations inside this view") and by
the map renderer to fit markers to the canvas. Boxes never cross the
antimeridian — the Swiss Experiment corpus doesn't need it, and rejecting
the case keeps containment logic obvious.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ReproError
from repro.geo.point import GeoPoint


@dataclass(frozen=True)
class BoundingBox:
    """South/west/north/east bounds in degrees."""

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self):
        if self.south > self.north:
            raise ReproError(f"south {self.south} exceeds north {self.north}")
        if self.west > self.east:
            raise ReproError(
                f"west {self.west} exceeds east {self.east} (antimeridian boxes unsupported)"
            )
        GeoPoint(self.south, self.west)
        GeoPoint(self.north, self.east)

    @classmethod
    def around(cls, points: Iterable[GeoPoint], padding_deg: float = 0.0) -> "BoundingBox":
        """The smallest box containing ``points``, optionally padded."""
        points = list(points)
        if not points:
            raise ReproError("cannot build a bounding box around zero points")
        south = min(p.lat for p in points) - padding_deg
        north = max(p.lat for p in points) + padding_deg
        west = min(p.lon for p in points) - padding_deg
        east = max(p.lon for p in points) + padding_deg
        return cls(
            max(-90.0, south), max(-180.0, west), min(90.0, north), min(180.0, east)
        )

    def contains(self, point: GeoPoint) -> bool:
        """Inclusive containment check."""
        return self.south <= point.lat <= self.north and self.west <= point.lon <= self.east

    def center(self) -> GeoPoint:
        """The box's central point."""
        return GeoPoint((self.south + self.north) / 2, (self.west + self.east) / 2)

    @property
    def width_deg(self) -> float:
        return self.east - self.west

    @property
    def height_deg(self) -> float:
        return self.north - self.south

    def intersects(self, other: "BoundingBox") -> bool:
        """True when this box overlaps ``other`` (boundaries inclusive)."""
        return not (
            other.west > self.east
            or other.east < self.west
            or other.south > self.north
            or other.north < self.south
        )
