"""Geohash encoding/decoding (Niemeyer's base-32 scheme).

Geohashes give the search system cheap spatial bucketing: stations whose
hashes share a prefix are near each other, which backs both the marker
clustering fallback and "pages near this page" recommendations.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ReproError
from repro.geo.point import GeoPoint

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"
_DECODE = {ch: i for i, ch in enumerate(_BASE32)}


def geohash_encode(point: GeoPoint, precision: int = 8) -> str:
    """Encode ``point`` to a geohash of ``precision`` characters."""
    if not 1 <= precision <= 12:
        raise ReproError(f"precision must lie in 1..12, got {precision}")
    lat_range = [-90.0, 90.0]
    lon_range = [-180.0, 180.0]
    bits = []
    even = True  # longitude first, per the geohash convention
    while len(bits) < precision * 5:
        interval = lon_range if even else lat_range
        value = point.lon if even else point.lat
        mid = (interval[0] + interval[1]) / 2
        if value >= mid:
            bits.append(1)
            interval[0] = mid
        else:
            bits.append(0)
            interval[1] = mid
        even = not even
    chars = []
    for i in range(0, len(bits), 5):
        index = 0
        for bit in bits[i : i + 5]:
            index = (index << 1) | bit
        chars.append(_BASE32[index])
    return "".join(chars)


def geohash_decode(geohash: str) -> Tuple[GeoPoint, float, float]:
    """Decode to ``(center, lat_error, lon_error)``.

    The errors are the half-heights/half-widths of the geohash cell.
    """
    if not geohash:
        raise ReproError("cannot decode an empty geohash")
    lat_range = [-90.0, 90.0]
    lon_range = [-180.0, 180.0]
    even = True
    for ch in geohash.lower():
        if ch not in _DECODE:
            raise ReproError(f"invalid geohash character {ch!r}")
        index = _DECODE[ch]
        for shift in range(4, -1, -1):
            bit = (index >> shift) & 1
            interval = lon_range if even else lat_range
            mid = (interval[0] + interval[1]) / 2
            if bit:
                interval[0] = mid
            else:
                interval[1] = mid
            even = not even
    lat = (lat_range[0] + lat_range[1]) / 2
    lon = (lon_range[0] + lon_range[1]) / 2
    return (
        GeoPoint(lat, lon),
        (lat_range[1] - lat_range[0]) / 2,
        (lon_range[1] - lon_range[0]) / 2,
    )
