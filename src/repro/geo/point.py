"""WGS-84 points and great-circle distance."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError

EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A latitude/longitude pair in degrees (WGS-84)."""

    lat: float
    lon: float

    def __post_init__(self):
        if not -90.0 <= self.lat <= 90.0:
            raise ReproError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ReproError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Return the haversine distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))
