"""Geospatial substrate for map-based browsing and map visualizations.

The demo presents search results "over maps ... using different colors for
describing the degree of matching" and supports map-based browsing of
metadata pages. This package provides the primitives those features need:

- :mod:`repro.geo.point` — WGS-84 points and haversine distance;
- :mod:`repro.geo.bbox` — bounding boxes (containment, expansion);
- :mod:`repro.geo.geohash` — geohash encode/decode for spatial bucketing;
- :mod:`repro.geo.projection` — Web-Mercator pixel projection;
- :mod:`repro.geo.cluster` — grid-based marker clustering, the same
  strategy map APIs use to collapse dense marker sets.
"""

from repro.geo.point import GeoPoint, haversine_km
from repro.geo.bbox import BoundingBox
from repro.geo.geohash import geohash_decode, geohash_encode
from repro.geo.projection import WebMercator
from repro.geo.cluster import MarkerCluster, cluster_markers

__all__ = [
    "GeoPoint",
    "haversine_km",
    "BoundingBox",
    "geohash_encode",
    "geohash_decode",
    "WebMercator",
    "MarkerCluster",
    "cluster_markers",
]
