"""Web-Mercator projection onto a pixel canvas.

The map renderer projects WGS-84 coordinates to pixel positions exactly
the way slippy-map APIs (the paper used Google Maps) do, so marker layouts
look familiar. The projection is fitted to a bounding box and canvas size.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import ReproError
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint

_MAX_LAT = 85.05112878  # Mercator's usable latitude limit


def _mercator_y(lat: float) -> float:
    lat = max(-_MAX_LAT, min(_MAX_LAT, lat))
    rad = math.radians(lat)
    return math.log(math.tan(math.pi / 4 + rad / 2))


class WebMercator:
    """Project points inside a bounding box onto a ``width`` × ``height`` canvas."""

    def __init__(self, bbox: BoundingBox, width: int, height: int, margin: int = 0):
        if width <= 0 or height <= 0:
            raise ReproError(f"canvas must be positive, got {width}x{height}")
        if margin < 0 or 2 * margin >= min(width, height):
            raise ReproError(f"margin {margin} too large for canvas {width}x{height}")
        self.bbox = bbox
        self.width = width
        self.height = height
        self.margin = margin
        self._x0 = bbox.west
        self._x1 = bbox.east
        self._y0 = _mercator_y(bbox.south)
        self._y1 = _mercator_y(bbox.north)
        # Degenerate boxes (single point) project to the canvas center.
        self._x_span = self._x1 - self._x0
        self._y_span = self._y1 - self._y0

    def project(self, point: GeoPoint) -> Tuple[float, float]:
        """Return pixel ``(x, y)``; y grows downward as in screen space."""
        usable_w = self.width - 2 * self.margin
        usable_h = self.height - 2 * self.margin
        if self._x_span == 0:
            x = self.width / 2
        else:
            x = self.margin + (point.lon - self._x0) / self._x_span * usable_w
        if self._y_span == 0:
            y = self.height / 2
        else:
            y = self.margin + (self._y1 - _mercator_y(point.lat)) / self._y_span * usable_h
        return x, y

    def contains(self, point: GeoPoint) -> bool:
        """True when ``point`` lies inside the fitted bounding box."""
        return self.bbox.contains(point)
