"""Grid-based marker clustering for map visualizations.

Fig. 2 of the paper shows "(clustered) maps": dense marker sets collapse
into count badges. This module reproduces the standard grid strategy —
partition the bounding box into cells, merge markers per cell, and report
each cluster's centroid, members and dominant color value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.geo.bbox import BoundingBox
from repro.geo.point import GeoPoint


@dataclass
class MarkerCluster:
    """A group of nearby markers.

    Attributes
    ----------
    centroid:
        Mean position of the members.
    members:
        The ``(point, payload)`` pairs merged into this cluster.
    """

    centroid: GeoPoint
    members: List[Tuple[GeoPoint, object]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def is_singleton(self) -> bool:
        return len(self.members) == 1


def cluster_markers(
    markers: Sequence[Tuple[GeoPoint, object]],
    grid: int = 8,
    bbox: Optional[BoundingBox] = None,
) -> List[MarkerCluster]:
    """Cluster ``markers`` on a ``grid`` × ``grid`` partition of ``bbox``.

    ``bbox`` defaults to the tight box around the markers. Returns clusters
    sorted by size (largest first) then by centroid for determinism.
    """
    if grid <= 0:
        raise ReproError(f"grid must be positive, got {grid}")
    if not markers:
        return []
    points = [point for point, _ in markers]
    box = bbox or BoundingBox.around(points, padding_deg=1e-9)
    width = box.width_deg or 1e-9
    height = box.height_deg or 1e-9
    cells: dict[Tuple[int, int], List[Tuple[GeoPoint, object]]] = {}
    for point, payload in markers:
        if not box.contains(point):
            continue
        col = min(grid - 1, int((point.lon - box.west) / width * grid))
        row = min(grid - 1, int((point.lat - box.south) / height * grid))
        cells.setdefault((row, col), []).append((point, payload))
    clusters = []
    for members in cells.values():
        lat = sum(point.lat for point, _ in members) / len(members)
        lon = sum(point.lon for point, _ in members) / len(members)
        clusters.append(MarkerCluster(GeoPoint(lat, lon), members))
    clusters.sort(key=lambda c: (-c.size, c.centroid.lat, c.centroid.lon))
    return clusters
