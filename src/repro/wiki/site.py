"""The wiki itself: page store, link structures, categories, RDF export.

This is where the paper's *double linking structure* is born: ordinary
``[[links]]`` populate :meth:`WikiSite.link_graph` and semantic
``[[prop::page]]`` annotations populate :meth:`WikiSite.semantic_graph`.
Both return :class:`~repro.pagerank.webgraph.LinkGraph` objects over the
same page ordering, ready for
:class:`~repro.pagerank.doublelink.DoubleLinkGraph`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.errors import WikiError
from repro.pagerank.webgraph import LinkGraph
from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, Namespace
from repro.rdf.term import IRI, Literal
from repro.wiki.page import Page
from repro.wiki.wikitext import ParsedWikitext, parse_wikitext

# The vocabulary used when exporting pages to RDF.
WIKI = Namespace("http://repro.example.org/wiki/")
PROP = Namespace("http://repro.example.org/property/")


def title_to_iri(title: str) -> IRI:
    """Deterministically map a page title to its RDF identifier."""
    return WIKI.term(title.replace(" ", "_"))


def property_to_iri(name: str) -> IRI:
    """Deterministically map a property name to its RDF predicate IRI."""
    return PROP.term(name.strip().lower().replace(" ", "_"))


class WikiSite:
    """An in-memory semantic wiki."""

    def __init__(self):
        self._pages: Dict[str, Page] = {}  # canonical (lower) title -> Page
        self._parsed: Dict[str, ParsedWikitext] = {}

    # ------------------------------------------------------------------
    # Page management
    # ------------------------------------------------------------------

    @staticmethod
    def _key(title: str) -> str:
        return title.strip().lower()

    def save(self, title: str, text: str, author: str = "", comment: str = "") -> Page:
        """Create the page or append a revision to it."""
        key = self._key(title)
        page = self._pages.get(key)
        if page is None:
            page = Page(title, text, author=author, comment=comment)
            self._pages[key] = page
        else:
            page.edit(text, author=author, comment=comment)
        self._parsed[key] = parse_wikitext(text)
        return page

    def get(self, title: str) -> Page:
        """The page titled ``title`` (case-insensitive); raises if missing."""
        page = self._pages.get(self._key(title))
        if page is None:
            raise WikiError(f"no page titled {title!r}")
        return page

    def has(self, title: str) -> bool:
        """True when a page titled ``title`` exists (case-insensitive)."""
        return self._key(title) in self._pages

    def delete(self, title: str) -> None:
        """Remove a page entirely; raises if missing."""
        key = self._key(title)
        if key not in self._pages:
            raise WikiError(f"no page titled {title!r}")
        del self._pages[key]
        del self._parsed[key]

    def parsed(self, title: str) -> ParsedWikitext:
        """The parsed current revision of ``title``."""
        parsed = self._parsed.get(self._key(title))
        if parsed is None:
            raise WikiError(f"no page titled {title!r}")
        return parsed

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def titles(self) -> List[str]:
        """All page titles, sorted case-insensitively (stable ordering)."""
        return sorted((page.title for page in self._pages.values()), key=str.lower)

    def pages(self) -> Iterator[Page]:
        """Iterate pages in title order."""
        for title in self.titles():
            yield self._pages[self._key(title)]

    def titles_in_namespace(self, namespace: str) -> List[str]:
        """Titles whose namespace matches (case-insensitive)."""
        wanted = namespace.lower()
        return [t for t in self.titles() if self._pages[self._key(t)].namespace.lower() == wanted]

    # ------------------------------------------------------------------
    # Categories
    # ------------------------------------------------------------------

    def categories(self) -> Dict[str, List[str]]:
        """category name -> sorted member titles."""
        members: Dict[str, List[str]] = {}
        for title in self.titles():
            for category in self.parsed(title).categories:
                members.setdefault(category, []).append(title)
        return members

    def pages_in_category(self, category: str) -> List[str]:
        """Titles tagged with ``[[Category:...]]`` matching ``category``."""
        wanted = category.lower()
        return [
            title
            for title in self.titles()
            if any(c.lower() == wanted for c in self.parsed(title).categories)
        ]

    # ------------------------------------------------------------------
    # Link structures (the paper's Section III input)
    # ------------------------------------------------------------------

    def page_index(self) -> Dict[str, int]:
        """title-key -> dense index, aligned with :meth:`titles`."""
        return {self._key(title): i for i, title in enumerate(self.titles())}

    def link_graph(self) -> LinkGraph:
        """Ordinary web-page links between existing pages."""
        index = self.page_index()
        graph = LinkGraph(len(index))
        for title in self.titles():
            src = index[self._key(title)]
            for target in self.parsed(title).links:
                dst = index.get(self._key(target))
                if dst is not None and dst != src:
                    graph.add_edge(src, dst)
        return graph

    def semantic_graph(self) -> LinkGraph:
        """Links induced by page-valued semantic annotations."""
        index = self.page_index()
        graph = LinkGraph(len(index))
        for title in self.titles():
            src = index[self._key(title)]
            for _, value in self.parsed(title).annotations:
                if not isinstance(value, str):
                    continue
                dst = index.get(self._key(value))
                if dst is not None and dst != src:
                    graph.add_edge(src, dst)
        return graph

    # ------------------------------------------------------------------
    # Annotations and RDF export
    # ------------------------------------------------------------------

    def annotations(self, title: str) -> List[Tuple[str, Any]]:
        """The (attribute, value) pairs of ``title``'s current revision."""
        return list(self.parsed(title).annotations)

    def property_names(self) -> List[str]:
        """Every semantic property used anywhere, lower-case sorted."""
        names = {
            prop.lower()
            for title in self.titles()
            for prop, _ in self.parsed(title).annotations
        }
        return sorted(names)

    def property_values(self, prop: str) -> List[Any]:
        """Every value of ``prop`` across the wiki (duplicates kept)."""
        wanted = prop.lower()
        values = []
        for title in self.titles():
            values.extend(self.parsed(title).annotation_values(wanted))
        return values

    def export_rdf(self, resolver: Any = None) -> Graph:
        """Export the wiki's semantics as an RDF graph.

        Every page becomes an IRI, typed by its namespace; annotations
        become property triples whose objects are page IRIs (when the
        value names an existing page) or typed literals; categories map
        to ``rdf:type`` triples on a Category IRI.

        ``resolver`` (any object with ``has(title)`` / ``get(title)``)
        decides whether an annotation value or link target "names an
        existing page". It defaults to this site; a federation of wikis
        (``repro.shard``) passes its federated view so cross-shard
        references become IRIs, exactly as in a single global wiki.
        """
        graph = Graph()
        for title in self.titles():
            self.export_page_rdf(graph, title, resolver=resolver)
        return graph

    def export_page_rdf(self, graph: Graph, title: str, resolver: Any = None) -> None:
        """Append one page's triples to ``graph`` (see :meth:`export_rdf`)."""
        site = self if resolver is None else resolver
        subject = title_to_iri(title)
        page = self._pages[self._key(title)]
        graph.add(subject, RDF.type, WIKI.term(page.namespace))
        graph.add(subject, PROP.title, Literal(title))
        parsed = self.parsed(title)
        for prop, value in parsed.annotations:
            predicate = property_to_iri(prop)
            if isinstance(value, str) and site.has(value):
                graph.add(subject, predicate, title_to_iri(site.get(value).title))
            else:
                graph.add(subject, predicate, Literal(value))
        for category in parsed.categories:
            graph.add(subject, RDF.type, WIKI.term(f"Category_{category.replace(' ', '_')}"))
        for target in parsed.links:
            if site.has(target):
                graph.add(subject, PROP.links_to, title_to_iri(site.get(target).title))

    def __repr__(self) -> str:
        return f"WikiSite(pages={self.page_count})"
