"""RDF-schema to database-schema mapping.

The paper's Query Management module processes queries "while taking into
account the mapping of RDF schema to database schema": the same metadata
lives as RDF property triples and as relational columns. A
:class:`SchemaMapping` declares, per page kind (wiki namespace), which
semantic property lands in which typed column — and can translate in both
directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SmrError
from repro.rdf.term import IRI
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.wiki.site import property_to_iri


@dataclass(frozen=True)
class PropertyMapping:
    """One semantic property -> one relational column."""

    property_name: str
    column: str
    dtype: DataType

    @property
    def property_iri(self) -> IRI:
        return property_to_iri(self.property_name)


class SchemaMapping:
    """The full mapping: one relational table per page kind.

    Every table gets an implicit ``title TEXT PRIMARY KEY`` column keyed
    by the wiki page title, which is what joins the two worlds together.
    """

    def __init__(self):
        self._tables: Dict[str, List[PropertyMapping]] = {}

    def declare(self, kind: str, mappings: List[PropertyMapping]) -> None:
        """Register the columns of page-kind ``kind`` (e.g. 'station')."""
        kind = kind.lower()
        if kind in self._tables:
            raise SmrError(f"kind {kind!r} already declared")
        seen = set()
        for mapping in mappings:
            if mapping.column in seen or mapping.column == "title":
                raise SmrError(f"duplicate or reserved column {mapping.column!r} in {kind!r}")
            seen.add(mapping.column)
        self._tables[kind] = list(mappings)

    @property
    def kinds(self) -> List[str]:
        return sorted(self._tables)

    def mappings_for(self, kind: str) -> List[PropertyMapping]:
        """The property mappings declared for ``kind``."""
        try:
            return list(self._tables[kind.lower()])
        except KeyError:
            raise SmrError(f"unknown kind {kind!r}; declared: {self.kinds}") from None

    def table_schema(self, kind: str) -> TableSchema:
        """The relational schema for ``kind``."""
        columns = [Column("title", DataType.TEXT, primary_key=True)]
        columns.extend(
            Column(m.column, m.dtype) for m in self.mappings_for(kind)
        )
        return TableSchema(kind.lower(), columns)

    def row_from_annotations(
        self, kind: str, title: str, annotations: List[Tuple[str, Any]]
    ) -> Dict[str, Any]:
        """Project a page's (attribute, value) pairs onto the table row.

        Unmapped annotations are ignored (they still live in the RDF
        graph); mapped values are lightly coerced to the declared type.
        """
        row: Dict[str, Any] = {"title": title}
        by_property = {m.property_name.lower(): m for m in self.mappings_for(kind)}
        for prop, value in annotations:
            mapping = by_property.get(prop.lower())
            if mapping is None:
                continue
            row[mapping.column] = _coerce(value, mapping.dtype)
        return row

    def column_for_property(self, kind: str, prop: str) -> Optional[str]:
        """The column storing ``prop`` in ``kind``, or None."""
        for mapping in self.mappings_for(kind):
            if mapping.property_name.lower() == prop.lower():
                return mapping.column
        return None

    def property_for_column(self, kind: str, column: str) -> Optional[str]:
        """The property stored in ``column`` of ``kind``, or None."""
        for mapping in self.mappings_for(kind):
            if mapping.column == column.lower():
                return mapping.property_name
        return None


def _coerce(value: Any, dtype: DataType) -> Any:
    """Best-effort coercion from annotation values to column types."""
    if value is None:
        return None
    if dtype is DataType.TEXT:
        return value if isinstance(value, str) else str(value)
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                return None
        return None
    if dtype is DataType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                return None
        return None
    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            if value.lower() in ("true", "yes", "1"):
                return True
            if value.lower() in ("false", "no", "0"):
                return False
        return None
    return None  # pragma: no cover
