"""Parsing the Semantic MediaWiki markup subset.

Three constructs matter to the search system:

- ``[[Target]]`` / ``[[Target|label]]`` — an ordinary page link;
- ``[[property::value]]`` / ``[[property::value|label]]`` — a semantic
  annotation: an (attribute, value) pair that also links to ``value``
  when the value names a page;
- ``[[Category:Name]]`` — category membership.

Everything else is treated as plain text (with the markup stripped for
indexing). Values are typed heuristically: integers and decimals become
numbers, ``true``/``false`` booleans, everything else stays a string.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Tuple

_LINK_RE = re.compile(r"\[\[([^\[\]]+)\]\]")


@dataclass
class ParsedWikitext:
    """The structured content extracted from one page's wikitext.

    Attributes
    ----------
    links:
        Ordinary link targets, in order of appearance (duplicates kept —
        callers that need a set can build one).
    annotations:
        ``(property, typed_value)`` pairs from ``[[prop::value]]`` markup.
    categories:
        Category names from ``[[Category:...]]``.
    plain_text:
        The text with markup replaced by its visible label, for keyword
        indexing.
    """

    links: List[str] = field(default_factory=list)
    annotations: List[Tuple[str, Any]] = field(default_factory=list)
    categories: List[str] = field(default_factory=list)
    plain_text: str = ""

    def annotation_values(self, prop: str) -> List[Any]:
        """Every value annotated for ``prop`` (case-insensitive name)."""
        wanted = prop.lower()
        return [value for name, value in self.annotations if name.lower() == wanted]


def coerce_annotation_value(raw: str) -> Any:
    """Type a raw annotation value: int, float, bool, or stripped string."""
    text = raw.strip()
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_wikitext(text: str) -> ParsedWikitext:
    """Parse ``text`` into a :class:`ParsedWikitext`."""
    result = ParsedWikitext()
    plain_parts: List[str] = []
    cursor = 0
    for match in _LINK_RE.finditer(text):
        plain_parts.append(text[cursor : match.start()])
        cursor = match.end()
        inner = match.group(1)
        label = None
        if "|" in inner:
            inner, label = inner.split("|", 1)
        inner = inner.strip()
        if "::" in inner:
            prop, _, raw_value = inner.partition("::")
            prop = prop.strip()
            value = coerce_annotation_value(raw_value)
            if prop:
                result.annotations.append((prop, value))
                if isinstance(value, str) and value:
                    result.links.append(value)
            plain_parts.append(label.strip() if label else str(value))
        elif inner.lower().startswith("category:"):
            category = inner.split(":", 1)[1].strip()
            if category:
                result.categories.append(category)
            # Category tags render as nothing in the page body.
        else:
            if inner:
                result.links.append(inner)
            plain_parts.append(label.strip() if label else inner)
    plain_parts.append(text[cursor:])
    result.plain_text = re.sub(r"\s+", " ", "".join(plain_parts)).strip()
    return result


def render_annotations(annotations: List[Tuple[str, Any]], links: List[str] = ()) -> str:
    """Build wikitext carrying ``annotations`` and extra plain ``links``.

    The inverse convenience of :func:`parse_wikitext`, used by the bulk
    loader to materialize metadata records as wiki pages.
    """
    parts = [f"[[{prop}::{value}]]" for prop, value in annotations]
    parts.extend(f"[[{target}]]" for target in links)
    return "\n".join(parts)
