"""The Semantic-MediaWiki-like substrate (paper, Section II).

The SMR is "established upon Semantic MediaWiki", which "offers a
technique of annotating wiki pages with semantics in the form of
(attribute, value)-pairs ... connecting them semantically to each other".
This package reproduces the pieces the search system relies on:

- :mod:`repro.wiki.page` — pages with revision history;
- :mod:`repro.wiki.wikitext` — the ``[[link]]`` / ``[[prop::value]]`` /
  ``[[Category:...]]`` markup parser;
- :mod:`repro.wiki.site` — the wiki itself: page store, the two link
  structures (ordinary links and semantic links), category index, and
  RDF export;
- :mod:`repro.wiki.schema_map` — the RDF-schema -> database-schema
  mapping the Query Management module consults.
"""

from repro.wiki.page import Page, Revision
from repro.wiki.wikitext import ParsedWikitext, parse_wikitext, render_annotations
from repro.wiki.site import WikiSite
from repro.wiki.schema_map import PropertyMapping, SchemaMapping

__all__ = [
    "Page",
    "Revision",
    "ParsedWikitext",
    "parse_wikitext",
    "render_annotations",
    "WikiSite",
    "PropertyMapping",
    "SchemaMapping",
]
