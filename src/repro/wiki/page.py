"""Wiki pages and their revision history."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import WikiError


@dataclass(frozen=True)
class Revision:
    """One saved version of a page's wikitext."""

    number: int
    text: str
    author: str = ""
    comment: str = ""


class Page:
    """A wiki page: a title plus an append-only revision list.

    Titles may carry a namespace prefix (``Sensor:WAN-001``); the part
    before the first colon is the namespace, defaulting to ``Main``.
    """

    def __init__(self, title: str, text: str = "", author: str = "", comment: str = ""):
        if not title or title != title.strip():
            raise WikiError(f"invalid page title {title!r}")
        if title.startswith(":") or title.endswith(":"):
            raise WikiError(f"invalid page title {title!r}")
        self.title = title
        self._revisions: List[Revision] = []
        self.edit(text, author=author, comment=comment or "created")

    @property
    def namespace(self) -> str:
        if ":" in self.title:
            return self.title.split(":", 1)[0]
        return "Main"

    @property
    def local_title(self) -> str:
        """The title without its namespace prefix."""
        if ":" in self.title:
            return self.title.split(":", 1)[1]
        return self.title

    @property
    def text(self) -> str:
        """The current wikitext."""
        return self._revisions[-1].text

    @property
    def revision_count(self) -> int:
        return len(self._revisions)

    def edit(self, text: str, author: str = "", comment: str = "") -> Revision:
        """Append a new revision and return it."""
        revision = Revision(len(self._revisions) + 1, text, author, comment)
        self._revisions.append(revision)
        return revision

    def revision(self, number: int) -> Revision:
        """Fetch revision ``number`` (1-based)."""
        if not 1 <= number <= len(self._revisions):
            raise WikiError(
                f"page {self.title!r} has revisions 1..{len(self._revisions)}, asked for {number}"
            )
        return self._revisions[number - 1]

    def history(self) -> List[Revision]:
        """All revisions, oldest first."""
        return list(self._revisions)

    def __repr__(self) -> str:
        return f"Page({self.title!r}, revisions={self.revision_count})"
