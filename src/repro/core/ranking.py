"""The ranking metric: PageRank over the double linking structure.

Section III: "Every metadata page in our system has two kinds of linking
structures ... We extend the original PageRank algorithm to consider
these two links simultaneously for scoring the metadata pages." The
ranker builds both structures from the wiki, blends them, solves with
Gauss–Seidel (the paper's production choice), and caches per-title
scores. It also exposes *property importance* — the PageRank mass carried
by pages using each semantic property — which feeds the recommendation
mechanism ("properties that are scored high by the PageRank algorithm").
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ConvergenceError, QueryError
from repro.pagerank.contributions import decompose_score
from repro.pagerank.doublelink import DoubleLinkGraph
from repro.pagerank.incremental import dirty_rows, initial_residual, refine_incremental
from repro.pagerank.linear_system import normalize_solution
from repro.pagerank.solvers import solve_pagerank
from repro.smr.repository import SensorMetadataRepository


class PageRankRanker:
    """Computes and caches double-link PageRank scores for an SMR.

    Freshness and warm starts: the score cache is stamped with the SMR's
    :attr:`~repro.smr.repository.SensorMetadataRepository.mutation_count`,
    so any page write invalidates it automatically — no explicit
    ``refresh()`` needed on the query path. Recomputation reuses the last
    score vector: small deltas go through the localized
    :func:`~repro.pagerank.incremental.refine_incremental` relaxation
    (only dirty rows are touched), and anything past
    ``incremental_threshold`` (a fraction of pages dirty) falls back to a
    full warm-started Gauss–Seidel solve. ``refresh()`` forces the full
    solve path.
    """

    def __init__(
        self,
        smr: SensorMetadataRepository,
        alpha: float = 0.5,
        teleport: float = 0.85,
        method: str = "gauss_seidel",
        tol: float = 1e-10,
        max_iter: int = 5000,
        incremental_threshold: float = 0.25,
    ):
        self.smr = smr
        self.alpha = alpha
        self.teleport = teleport
        self.method = method
        self.tol = tol
        self.max_iter = max_iter
        self.incremental_threshold = incremental_threshold
        self._scores: Optional[Dict[str, float]] = None
        self._property_weights: Optional[Dict[str, float]] = None
        self._built_at_mutation: Optional[int] = None
        self._force_full = False
        # Serializes recomputes: with the engine fanning constraint
        # evaluation onto pool workers, several threads can hit a stale
        # cache at once — one solve is expensive enough without N copies.
        # Reentrant because property_weights() -> scores() may recompute.
        self._refresh_lock = threading.RLock()
        # Per-generation snapshot backing explain(): (titles, index map,
        # the combined problem, the score vector, both link graphs).
        # Stamped with (mutation_count, epoch) so writes and forced
        # refreshes both invalidate it; built lazily on first explain.
        self._explain_memo: Optional[Tuple[Tuple[Any, int], Dict[str, Any]]] = None
        #: Bumped by :meth:`refresh`. Result caches that embed PageRank
        #: scores fold this into their generation stamp, so forcing a
        #: re-solve also invalidates cached search results.
        self.epoch = 0

    # ------------------------------------------------------------------
    # Page scores
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Force a full re-solve on the next :meth:`scores` call.

        The previous solution is kept as a warm start: the paper notes
        that "Pagerank scores need to be updated regularly as new
        metadata pages are continuously created", and re-solving from the
        old vector converges in a fraction of the iterations when the
        graph changed only incrementally (see
        :attr:`last_refresh_iterations`). Ordinary SMR writes are picked
        up automatically (and may take the cheaper incremental path);
        ``refresh()`` is for forcing a complete solver run — e.g. after
        changing ``alpha``/``teleport``/``method`` on a live ranker.
        """
        self._scores = None
        self._property_weights = None
        self._force_full = True
        self.epoch += 1

    #: Iterations spent by the most recent solve, in full-sweep units
    #: (incremental refreshes convert their row-relaxation count; see
    #: :meth:`IncrementalResult.sweep_equivalents`). Diagnostics for the
    #: incremental-update story.
    last_refresh_iterations: int = 0

    #: How the most recent recompute ran: "cold" (no previous vector),
    #: "warm" (full solve seeded with the previous vector) or
    #: "incremental" (localized dirty-set relaxation).
    last_refresh_mode: str = "cold"

    #: Single-row relaxations spent by the most recent incremental
    #: refresh (0 for full solves).
    last_refresh_relaxations: int = 0

    def _stale(self) -> bool:
        if self._scores is None:
            return True
        mutation = getattr(self.smr, "mutation_count", None)
        return mutation is not None and mutation != self._built_at_mutation

    def scores(self) -> Dict[str, float]:
        """title -> PageRank score (cached; recomputed when the SMR moved).

        The cache is generation-stamped: a register/edit/bulk-load bumps
        ``smr.mutation_count`` and the next call recomputes — through the
        incremental path when the edit dirtied few rows, through a
        warm-started full solve otherwise.
        """
        if self._stale():
            with self._refresh_lock:  # double-checked: first thread solves
                if self._stale():
                    self._property_weights = None
                    self._recompute()
        return self._scores

    def _recompute(self) -> None:
        mutation = getattr(self.smr, "mutation_count", None)
        # Reading self.smr.wiki bypasses the facade, so take the SMR read
        # lock ourselves: titles and both link graphs must come from one
        # consistent snapshot (mutation read first — a racing write can
        # then only stamp fresh graphs stale, never the reverse).
        with self.smr.lock.read():
            titles = self.smr.wiki.titles()
            if not titles:
                self._scores = {}
                self._built_at_mutation = mutation
                self._force_full = False
                return
            double = DoubleLinkGraph(
                self.smr.wiki.link_graph(), self.smr.wiki.semantic_graph()
            )
        problem = double.to_problem(alpha=self.alpha, teleport=self.teleport)
        x0 = self._warm_start(titles, problem.n)
        mode = "cold"
        scores_vec: Optional[np.ndarray] = None
        self.last_refresh_relaxations = 0
        if x0 is not None and self.method not in ("power", "arnoldi"):
            # Linear-system solvers work on the un-normalized Eq. 5
            # solution y = x / k with k = (1-c) + c (d^T x); rescale
            # the remembered probability vector into that gauge.
            k = (1.0 - problem.teleport) + problem.teleport * float(
                x0[problem.dangling].sum()
            )
            x0 = x0 / k
            mode = "warm"
            if not self._force_full:
                scores_vec = self._try_incremental(problem, x0, titles)
                if scores_vec is not None:
                    mode = "incremental"
        elif x0 is not None:
            mode = "warm"
        if scores_vec is None:
            result = solve_pagerank(
                problem, method=self.method, tol=self.tol, max_iter=self.max_iter, x0=x0
            )
            if not result.converged:
                raise ConvergenceError(
                    f"PageRank solver {self.method!r} did not converge in "
                    f"{result.iterations} iterations (residual {result.final_residual:.2e})",
                    iterations=result.iterations,
                    residual=result.final_residual,
                )
            self.last_refresh_iterations = result.iterations
            scores_vec = result.scores
        self.last_refresh_mode = mode
        self._record_refresh(mode, problem.n)
        self._scores = {title: float(scores_vec[i]) for i, title in enumerate(titles)}
        self._previous_scores = dict(self._scores)
        self._built_at_mutation = mutation
        self._force_full = False

    def _note_dirty(self, dirty: np.ndarray, titles: List[str]) -> None:
        """Hook: observe which rows the incremental refresh marked dirty.

        ``dirty`` holds dense row indices into ``titles`` (the snapshot
        the current problem was built from). The base ranker does nothing
        extra — the aggregate ``ranking_dirty_pages`` gauge is already
        set — but the sharded ranker overrides this to attribute dirty
        pages to their owning shard.
        """

    def _try_incremental(
        self, problem, y0: np.ndarray, titles: Optional[List[str]] = None
    ) -> Optional[np.ndarray]:
        """Localized dirty-set recompute; None when a full solve is due.

        Declines when the initial residual marks more than
        ``incremental_threshold`` of all pages dirty (a full sweep is
        then cheaper per unit of progress) or when the relaxation budget
        runs out before convergence — the caller falls back to the
        warm-started full solver either way, so correctness never depends
        on this path.
        """
        started = time.perf_counter()
        y = np.asarray(y0, dtype=float).copy()
        residual = initial_residual(problem, y)
        # Robust scalar rescale of the warm start: when the page count
        # changed, the uniform personalization shrinks by n/(n+1) and the
        # whole old solution is off by that factor — every row looks
        # dirty. Away from the edit, b_i / (A y)_i is one constant (the
        # gauge mismatch), so the median of the per-row ratios recovers
        # it exactly while ignoring the few genuinely dirty rows (a
        # least-squares fit would be contaminated by them). Rescaling by
        # that t re-localizes the residual around the actual edit.
        image = problem.personalization - residual  # A y, already in hand
        nonzero = np.abs(image) > 0.0
        if nonzero.any():
            t = float(np.median(problem.personalization[nonzero] / image[nonzero]))
            if t > 0.0:
                y *= t
                residual = problem.personalization - t * image
        dirty = dirty_rows(residual, problem.personalization, self.tol)
        obs.get_registry().gauge(
            "ranking_dirty_pages",
            "Rows marked dirty by the most recent incremental refresh attempt.",
        ).set(float(dirty.size))
        if titles is not None:
            self._note_dirty(dirty, titles)
        if dirty.size > self.incremental_threshold * problem.n:
            return None
        result = refine_incremental(
            problem, y, tol=self.tol, residual=residual
        )
        if not result.converged:
            return None
        self.last_refresh_iterations = result.sweep_equivalents(problem.n)
        self.last_refresh_relaxations = result.relaxations
        # The dirty-set path bypasses the solver registry, so it reports
        # its residual trajectory to the shared recorder itself — keeping
        # /debug/convergence complete across full and incremental solves.
        obs.get_convergence_recorder().record(
            "incremental",
            n=problem.n,
            iterations=self.last_refresh_iterations,
            converged=True,
            elapsed=time.perf_counter() - started,
            residuals=result.residual_history,
            matvecs=result.relaxations / max(problem.n, 1),
        )
        return normalize_solution(problem, y)

    def record_staleness(self) -> int:
        """Export the mutation lag as ``ranking_staleness_generations``.

        The lag is how many SMR mutations the cached ranking has not yet
        absorbed (the full mutation count when nothing was ever ranked).
        Called each tick by the metrics sampler's engine probe, this
        turns ranker freshness into the time series the ROADMAP's
        streaming-ingestion item asks for — staleness *lag over time*,
        not just the boolean the ``/healthz`` probe reports — and the
        series the ``ranker_freshness`` SLO burns its budget against.
        """
        current = getattr(self.smr, "mutation_count", 0) or 0
        built = self._built_at_mutation
        lag = current if built is None else max(0, current - built)
        registry = obs.get_registry()
        if registry.enabled:
            registry.gauge(
                "ranking_staleness_generations",
                "SMR mutations not yet reflected in the PageRank ranking.",
            ).set(float(lag))
        return lag

    def freshness(self) -> Dict[str, Any]:
        """Ranker staleness vs. the SMR generation, for ``/healthz``.

        ``fresh=False`` means the next scoring call will trigger a
        recompute — a degraded-but-self-healing state, not an error.
        """
        return {
            "fresh": not self._stale(),
            "built_at_mutation": self._built_at_mutation,
            "smr_mutation": getattr(self.smr, "mutation_count", None),
            "epoch": self.epoch,
            "last_refresh_mode": self.last_refresh_mode,
            "last_refresh_iterations": self.last_refresh_iterations,
        }

    def _record_refresh(self, mode: str, n: int) -> None:
        obs.get_event_log().info(
            "ranking.refresh",
            mode=mode,
            pages=n,
            iterations=self.last_refresh_iterations,
            relaxations=self.last_refresh_relaxations,
        )
        registry = obs.get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "ranking_refresh_total",
            "Ranking recomputes per mode (cold, warm, incremental).",
            labels=("mode",),
        ).labels(mode).inc()
        registry.gauge(
            "ranking_graph_pages", "Pages in the ranking graph at the last refresh."
        ).set(float(n))

    def _warm_start(self, titles, n: int) -> Optional[np.ndarray]:
        """Seed the solver with the previous solution, if one exists.

        New pages start at the old median score; the vector is rescaled
        to unit sum, the scale every solver's default start has.
        """
        previous = getattr(self, "_previous_scores", None)
        if not previous:
            return None
        old_values = sorted(previous.values())
        fallback = old_values[len(old_values) // 2]
        vector = np.array([previous.get(title, fallback) for title in titles])
        total = vector.sum()
        if total <= 0:
            return None
        return vector / total

    def score(self, title: str) -> float:
        """The PageRank of one page (0.0 for unknown titles)."""
        return self.scores().get(title, 0.0)

    def top(self, k: int = 10) -> List[Tuple[str, float]]:
        """The ``k`` highest-ranked pages as (title, score) pairs."""
        ranked = sorted(self.scores().items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    # ------------------------------------------------------------------
    # Score provenance ("why is this page ranked here")
    # ------------------------------------------------------------------

    def _explain_snapshot(self) -> Dict[str, Any]:
        """The per-generation state :meth:`explain` decomposes against.

        Same generation-before-data, double-checked-lock shape as the
        score cache: the (mutation, epoch) stamp is read before the
        graphs, so a racing write can at worst stamp fresh state stale
        (rebuilt next call), never stale state fresh. The snapshot holds
        the combined double-link problem — whose cached transpose is the
        in-link index the decomposition reads — plus both component
        graphs, so each contribution can be classified as arriving via
        the web link, the semantic link, or both (Section III).
        """
        stamp = (getattr(self.smr, "mutation_count", None), self.epoch)
        memo = self._explain_memo
        if memo is not None and memo[0] == stamp:
            return memo[1]
        with self._refresh_lock:
            stamp = (getattr(self.smr, "mutation_count", None), self.epoch)
            memo = self._explain_memo
            if memo is not None and memo[0] == stamp:
                return memo[1]
            scores = self.scores()
            with self.smr.lock.read():
                titles = list(self.smr.wiki.titles())
                web = self.smr.wiki.link_graph()
                semantic = self.smr.wiki.semantic_graph()
            double = DoubleLinkGraph(web, semantic)
            problem = double.to_problem(alpha=self.alpha, teleport=self.teleport)
            state: Dict[str, Any] = {
                "titles": titles,
                "index": {title.strip().lower(): i for i, title in enumerate(titles)},
                "problem": problem,
                "x": np.array([scores.get(title, 0.0) for title in titles]),
                "web": web,
                "semantic": semantic,
            }
            self._explain_memo = (stamp, state)
            return state

    def explain(self, title: str, top_k: int = 5) -> Dict[str, Any]:
        """Decompose one page's PageRank into its Eq. 2 fixed-point terms.

        Returns the :func:`~repro.pagerank.contributions.decompose_score`
        dict with titles attached: the page's score split into the
        ``top_k`` largest in-link contributions (each naming its source
        page and whether the link is a web link, a semantic link, or
        both), the mass folded into ``remainder``, the dangling and
        teleport terms, and the solver ``residual``. The parts sum to the
        reported score exactly. Unknown titles raise
        :class:`~repro.errors.QueryError`.
        """
        state = self._explain_snapshot()
        position = state["index"].get(title.strip().lower())
        if position is None:
            raise QueryError(f"unknown page {title!r}")
        decomposition = decompose_score(
            state["problem"], state["x"], position, top_k=top_k
        )
        titles = state["titles"]
        web, semantic = state["web"], state["semantic"]
        contributions = []
        for source, value in decomposition.contributions:
            via_web = position in web.out_links(source)
            via_semantic = position in semantic.out_links(source)
            via = "both" if via_web and via_semantic else (
                "web" if via_web else "semantic"
            )
            contributions.append(
                {"source": titles[source], "value": value, "via": via}
            )
        out = decomposition.to_dict()
        out["title"] = titles[position]
        out["contributions"] = contributions
        return out

    # ------------------------------------------------------------------
    # Personalized PageRank ("pages related to these pages")
    # ------------------------------------------------------------------

    def personalized(self, seed_titles: Iterable[str]) -> Dict[str, float]:
        """Topic-sensitive PageRank: teleportation restricted to seeds.

        Returns title -> score with mass concentrated around the seed
        pages' neighborhoods — the classic "related pages" primitive.
        Unknown seed titles raise :class:`QueryError`.
        """
        with self.smr.lock.read():  # direct wiki access, same as _recompute
            titles = self.smr.wiki.titles()
            double = DoubleLinkGraph(
                self.smr.wiki.link_graph(), self.smr.wiki.semantic_graph()
            )
        index = {title.strip().lower(): i for i, title in enumerate(titles)}
        seeds = []
        for title in seed_titles:
            position = index.get(title.strip().lower())
            if position is None:
                raise QueryError(f"unknown page {title!r} in personalization seeds")
            seeds.append(position)
        if not seeds:
            raise QueryError("personalized PageRank needs at least one seed page")
        personalization = np.zeros(len(titles))
        personalization[seeds] = 1.0 / len(seeds)
        problem = double.to_problem(
            alpha=self.alpha, teleport=self.teleport, personalization=personalization
        )
        result = solve_pagerank(
            problem, method=self.method, tol=self.tol, max_iter=self.max_iter
        )
        return {title: float(result.scores[i]) for i, title in enumerate(titles)}

    def related_pages(self, title: str, k: int = 5) -> List[Tuple[str, float]]:
        """The ``k`` pages most related to ``title`` (seed excluded)."""
        scores = self.personalized([title])
        key = title.strip().lower()
        ranked = sorted(
            (
                (candidate, score)
                for candidate, score in scores.items()
                if candidate.strip().lower() != key
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:k]

    # ------------------------------------------------------------------
    # Property importance (feeds recommendations)
    # ------------------------------------------------------------------

    def property_weights(self) -> Dict[str, float]:
        """property name -> total PageRank mass of pages annotating it."""
        scores = self.scores()  # refreshing scores resets stale weights too
        if self._property_weights is None:
            weights: Dict[str, float] = {}
            for title in self.smr.titles():
                page_score = scores.get(title, 0.0)
                for prop, _ in self.smr.annotations(title):
                    name = prop.lower()
                    weights[name] = weights.get(name, 0.0) + page_score
            self._property_weights = weights
        return self._property_weights

    def top_properties(self, k: int = 5) -> List[Tuple[str, float]]:
        """The ``k`` highest-weighted properties as (name, weight) pairs."""
        ranked = sorted(self.property_weights().items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]
