"""The ranking metric: PageRank over the double linking structure.

Section III: "Every metadata page in our system has two kinds of linking
structures ... We extend the original PageRank algorithm to consider
these two links simultaneously for scoring the metadata pages." The
ranker builds both structures from the wiki, blends them, solves with
Gauss–Seidel (the paper's production choice), and caches per-title
scores. It also exposes *property importance* — the PageRank mass carried
by pages using each semantic property — which feeds the recommendation
mechanism ("properties that are scored high by the PageRank algorithm").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError, QueryError
from repro.pagerank.doublelink import DoubleLinkGraph
from repro.pagerank.solvers import solve_pagerank
from repro.smr.repository import SensorMetadataRepository


class PageRankRanker:
    """Computes and caches double-link PageRank scores for an SMR."""

    def __init__(
        self,
        smr: SensorMetadataRepository,
        alpha: float = 0.5,
        teleport: float = 0.85,
        method: str = "gauss_seidel",
        tol: float = 1e-10,
        max_iter: int = 5000,
    ):
        self.smr = smr
        self.alpha = alpha
        self.teleport = teleport
        self.method = method
        self.tol = tol
        self.max_iter = max_iter
        self._scores: Optional[Dict[str, float]] = None
        self._property_weights: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Page scores
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Recompute scores (call after bulk changes to the SMR).

        The previous solution is kept as a warm start: the paper notes
        that "Pagerank scores need to be updated regularly as new
        metadata pages are continuously created", and re-solving from the
        old vector converges in a fraction of the iterations when the
        graph changed only incrementally (see
        :attr:`last_refresh_iterations`).
        """
        self._scores = None
        self._property_weights = None

    #: Iterations spent by the most recent solve (diagnostics for the
    #: incremental-update story).
    last_refresh_iterations: int = 0

    def scores(self) -> Dict[str, float]:
        """title -> PageRank score (computed lazily, cached)."""
        if self._scores is None:
            titles = self.smr.wiki.titles()
            if not titles:
                self._scores = {}
                return self._scores
            double = DoubleLinkGraph(self.smr.wiki.link_graph(), self.smr.wiki.semantic_graph())
            problem = double.to_problem(alpha=self.alpha, teleport=self.teleport)
            x0 = self._warm_start(titles, problem.n)
            if x0 is not None and self.method not in ("power", "arnoldi"):
                # Linear-system solvers work on the un-normalized Eq. 5
                # solution y = x / k with k = (1-c) + c (d^T x); rescale
                # the remembered probability vector into that gauge.
                k = (1.0 - problem.teleport) + problem.teleport * float(
                    x0[problem.dangling].sum()
                )
                x0 = x0 / k
            result = solve_pagerank(
                problem, method=self.method, tol=self.tol, max_iter=self.max_iter, x0=x0
            )
            if not result.converged:
                raise ConvergenceError(
                    f"PageRank solver {self.method!r} did not converge in "
                    f"{result.iterations} iterations (residual {result.final_residual:.2e})",
                    iterations=result.iterations,
                    residual=result.final_residual,
                )
            self.last_refresh_iterations = result.iterations
            self._scores = {
                title: float(result.scores[i]) for i, title in enumerate(titles)
            }
            self._previous_scores = dict(self._scores)
        return self._scores

    def _warm_start(self, titles, n: int) -> Optional[np.ndarray]:
        """Seed the solver with the previous solution, if one exists.

        New pages start at the old median score; the vector is rescaled
        to unit sum, the scale every solver's default start has.
        """
        previous = getattr(self, "_previous_scores", None)
        if not previous:
            return None
        old_values = sorted(previous.values())
        fallback = old_values[len(old_values) // 2]
        vector = np.array([previous.get(title, fallback) for title in titles])
        total = vector.sum()
        if total <= 0:
            return None
        return vector / total

    def score(self, title: str) -> float:
        """The PageRank of one page (0.0 for unknown titles)."""
        return self.scores().get(title, 0.0)

    def top(self, k: int = 10) -> List[Tuple[str, float]]:
        """The ``k`` highest-ranked pages as (title, score) pairs."""
        ranked = sorted(self.scores().items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    # ------------------------------------------------------------------
    # Personalized PageRank ("pages related to these pages")
    # ------------------------------------------------------------------

    def personalized(self, seed_titles: Iterable[str]) -> Dict[str, float]:
        """Topic-sensitive PageRank: teleportation restricted to seeds.

        Returns title -> score with mass concentrated around the seed
        pages' neighborhoods — the classic "related pages" primitive.
        Unknown seed titles raise :class:`QueryError`.
        """
        titles = self.smr.wiki.titles()
        index = {title.strip().lower(): i for i, title in enumerate(titles)}
        seeds = []
        for title in seed_titles:
            position = index.get(title.strip().lower())
            if position is None:
                raise QueryError(f"unknown page {title!r} in personalization seeds")
            seeds.append(position)
        if not seeds:
            raise QueryError("personalized PageRank needs at least one seed page")
        personalization = np.zeros(len(titles))
        personalization[seeds] = 1.0 / len(seeds)
        double = DoubleLinkGraph(self.smr.wiki.link_graph(), self.smr.wiki.semantic_graph())
        problem = double.to_problem(
            alpha=self.alpha, teleport=self.teleport, personalization=personalization
        )
        result = solve_pagerank(
            problem, method=self.method, tol=self.tol, max_iter=self.max_iter
        )
        return {title: float(result.scores[i]) for i, title in enumerate(titles)}

    def related_pages(self, title: str, k: int = 5) -> List[Tuple[str, float]]:
        """The ``k`` pages most related to ``title`` (seed excluded)."""
        scores = self.personalized([title])
        key = title.strip().lower()
        ranked = sorted(
            (
                (candidate, score)
                for candidate, score in scores.items()
                if candidate.strip().lower() != key
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:k]

    # ------------------------------------------------------------------
    # Property importance (feeds recommendations)
    # ------------------------------------------------------------------

    def property_weights(self) -> Dict[str, float]:
        """property name -> total PageRank mass of pages annotating it."""
        if self._property_weights is None:
            weights: Dict[str, float] = {}
            scores = self.scores()
            for title in self.smr.wiki.titles():
                page_score = scores.get(title, 0.0)
                for prop, _ in self.smr.annotations(title):
                    name = prop.lower()
                    weights[name] = weights.get(name, 0.0) + page_score
            self._property_weights = weights
        return self._property_weights

    def top_properties(self, k: int = 5) -> List[Tuple[str, float]]:
        """The ``k`` highest-weighted properties as (name, weight) pairs."""
        ranked = sorted(self.property_weights().items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]
