"""Facet counts over result sets.

The Fig. 2 bar and pie diagrams are facet distributions — "real-time bar
and pie diagrams" over whatever property the user groups by. This module
computes those distributions; :mod:`repro.viz` renders them.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, List, Tuple

from repro.errors import QueryError
from repro.smr.repository import SensorMetadataRepository


def facet_counts(
    smr: SensorMetadataRepository, titles: Iterable[str], prop: str
) -> List[Tuple[Any, int]]:
    """Count values of ``prop`` across ``titles``, most common first.

    Pages lacking the property are counted under ``None`` so chart totals
    match the result-set size.
    """
    if not prop:
        raise QueryError("facet_counts() needs a property name")
    wanted = prop.lower()
    counts: Counter = Counter()
    for title in titles:
        values = [
            value for name, value in smr.annotations(title) if name.lower() == wanted
        ]
        if values:
            for value in values:
                counts[value] += 1
        else:
            counts[None] += 1
    return sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))
