"""Autocomplete and the dynamic drop-downs of the query interface (Fig. 7).

Three completion surfaces, all trie-backed and weighted so popular
entries surface first:

- page titles (weighted by PageRank — important pages complete first);
- semantic property names (weighted by usage count);
- property *values*, per (kind, property) — these are the paper's
  "drop-down menus that change dynamically based on the chosen
  properties of schema".
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from repro.core.ranking import PageRankRanker
from repro.errors import QueryError
from repro.smr.repository import SensorMetadataRepository
from repro.text.trie import Trie


class AutocompleteService:
    """Lazy, cached completion indexes over one SMR."""

    def __init__(self, smr: SensorMetadataRepository, ranker: Optional[PageRankRanker] = None):
        self.smr = smr
        self.ranker = ranker
        self._title_trie: Optional[Trie] = None
        self._title_case: Dict[str, str] = {}  # lower-case -> original title
        self._property_trie: Optional[Trie] = None
        self._value_cache: Dict[Tuple[Optional[str], str], List[Tuple[Any, int]]] = {}

    def refresh(self) -> None:
        """Drop caches after the SMR changes."""
        self._title_trie = None
        self._title_case.clear()
        self._property_trie = None
        self._value_cache.clear()

    # ------------------------------------------------------------------
    # Titles
    # ------------------------------------------------------------------

    def complete_title(self, prefix: str, limit: int = 10) -> List[str]:
        """Page-title completions, most important pages first."""
        if self._title_trie is None:
            trie = Trie()
            scores = self.ranker.scores() if self.ranker is not None else {}
            for title in self.smr.titles():
                trie.insert(title, weight=1.0 + scores.get(title, 0.0) * 1000.0)
                self._title_case[title.lower()] = title
            self._title_trie = trie
        completions = self._title_trie.complete(prefix, limit=limit)
        return [self._title_case.get(item, item) for item in completions]

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    def complete_property(self, prefix: str, limit: int = 10) -> List[str]:
        """Semantic-property-name completions, most used first."""
        if self._property_trie is None:
            trie = Trie()
            usage: Counter = Counter()
            for title in self.smr.titles():
                for prop, _ in self.smr.annotations(title):
                    usage[prop.lower()] += 1
            for prop, count in usage.items():
                trie.insert(prop, weight=float(count))
            self._property_trie = trie
        return self._property_trie.complete(prefix, limit=limit)

    # ------------------------------------------------------------------
    # Dynamic drop-downs (values per property)
    # ------------------------------------------------------------------

    def values_for(
        self, prop: str, kind: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Tuple[Any, int]]:
        """Distinct values of ``prop`` with usage counts, most common first.

        ``kind`` narrows to one metadata kind — exactly how the demo's
        drop-downs repopulate when the user picks a schema property.
        """
        if not prop:
            raise QueryError("values_for() needs a property name")
        key = (kind.lower() if kind else None, prop.lower())
        if key not in self._value_cache:
            counts: Counter = Counter()
            titles = self.smr.titles(kind) if kind else self.smr.titles()
            for title in titles:
                for name, value in self.smr.annotations(title):
                    if name.lower() == prop.lower():
                        counts[value] += 1
            ranked = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))
            self._value_cache[key] = ranked
        values = self._value_cache[key]
        return values[:limit] if limit is not None else list(values)

    def complete_value(
        self, prop: str, prefix: str, kind: Optional[str] = None, limit: int = 10
    ) -> List[str]:
        """String-value completions of ``prop`` starting with ``prefix``."""
        lowered = prefix.lower()
        matches = [
            str(value)
            for value, _ in self.values_for(prop, kind)
            if isinstance(value, str) and value.lower().startswith(lowered)
        ]
        return matches[:limit]
