"""Search result objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.geo.point import GeoPoint


@dataclass
class SearchResult:
    """One matched metadata page.

    Attributes
    ----------
    score:
        The final sort score under the query's sort mode.
    relevance:
        Keyword relevance (BM25), 0 when the query had no keyword.
    pagerank:
        The page's double-link PageRank score.
    match_degree:
        Fraction of the query's property predicates this page satisfies —
        1.0 under strict (AND) matching, possibly lower under relaxed
        matching; drives the map color coding of Fig. 2.
    location:
        The page's coordinates when its annotations carry them.
    """

    title: str
    kind: str
    score: float = 0.0
    relevance: float = 0.0
    pagerank: float = 0.0
    match_degree: float = 1.0
    annotations: Dict[str, Any] = field(default_factory=dict)
    location: Optional[GeoPoint] = None

    def get(self, prop: str, default: Any = None) -> Any:
        """The value of annotation ``prop`` (case-insensitive), or ``default``."""
        return self.annotations.get(prop.lower(), default)


class SearchResults:
    """An ordered list of results plus query echo and totals."""

    def __init__(self, results: List[SearchResult], total_candidates: int, query_description: str):
        self.results = results
        self.total_candidates = total_candidates
        self.query_description = query_description

    def __iter__(self) -> Iterator[SearchResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> SearchResult:
        return self.results[index]

    @property
    def titles(self) -> List[str]:
        return [result.title for result in self.results]

    def located(self) -> List[SearchResult]:
        """Only the results that carry coordinates (for map rendering)."""
        return [result for result in self.results if result.location is not None]

    def rows(self, properties: Tuple[str, ...] = ()) -> List[Tuple[Any, ...]]:
        """Tabular projection: (title, kind, score, *properties)."""
        table = []
        for result in self.results:
            row = [result.title, result.kind, round(result.score, 6)]
            row.extend(result.get(prop) for prop in properties)
            table.append(tuple(row))
        return table

    def __repr__(self) -> str:
        return (
            f"SearchResults({len(self.results)} of {self.total_candidates} candidates, "
            f"query: {self.query_description})"
        )
