"""The recommendation mechanism.

"A recommendation mechanism is embedded to our system. This presents
relevant pages based on the combination of query inputs and properties
that are high-scored by the PageRank algorithm."

Given a result set, the recommender walks each result's semantic
neighborhood — pages its annotations point to, and pages that annotate it
— and scores every neighbor by

    sum over connections of  PageRank(neighbor) x weight(property),

where ``weight`` is the property-importance measure from
:class:`~repro.core.ranking.PageRankRanker` (total PageRank mass of pages
carrying that property). Pages already in the result set are excluded;
each recommendation records *why* it was proposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.ranking import PageRankRanker
from repro.core.results import SearchResults
from repro.smr.repository import SensorMetadataRepository


@dataclass
class Recommendation:
    """One proposed page with its provenance."""

    title: str
    score: float
    reasons: List[Tuple[str, str]] = field(default_factory=list)  # (via_property, from_title)

    def describe(self) -> str:
        """One-line summary: title, score, and the first few reasons."""
        via = ", ".join(f"{prop} of {src}" for prop, src in self.reasons[:3])
        return f"{self.title} (score {self.score:.3g}; via {via})"


class Recommender:
    """Semantic-neighborhood recommendations weighted by PageRank."""

    def __init__(self, smr: SensorMetadataRepository, ranker: PageRankRanker):
        self.smr = smr
        self.ranker = ranker
        self._reverse: Dict[str, List[Tuple[str, str]]] = {}
        self._reverse_built = False

    def _reverse_links(self) -> Dict[str, List[Tuple[str, str]]]:
        """target title-key -> [(property, source title)] across the wiki."""
        if not self._reverse_built:
            self._reverse = {}
            for title in self.smr.titles():
                for prop, value in self.smr.annotations(title):
                    if isinstance(value, str) and self.smr.wiki.has(value):
                        key = value.strip().lower()
                        self._reverse.setdefault(key, []).append((prop.lower(), title))
            self._reverse_built = True
        return self._reverse

    def refresh(self) -> None:
        """Invalidate the reverse-link cache after SMR changes."""
        self._reverse_built = False

    def recommend(
        self, results: SearchResults, k: int = 5, fanout: int = 10
    ) -> List[Recommendation]:
        """Return up to ``k`` pages related to the top ``fanout`` results."""
        if k <= 0:
            return []
        exclude = {title.strip().lower() for title in results.titles}
        weights = self.ranker.property_weights()
        max_weight = max(weights.values(), default=1.0) or 1.0
        scores: Dict[str, Recommendation] = {}

        def credit(neighbor: str, prop: str, source: str) -> None:
            key = neighbor.strip().lower()
            if key in exclude or not self.smr.wiki.has(neighbor):
                return
            canonical = self.smr.wiki.get(neighbor).title
            gain = self.ranker.score(canonical) * (
                weights.get(prop.lower(), 0.0) / max_weight
            )
            entry = scores.get(key)
            if entry is None:
                entry = Recommendation(canonical, 0.0)
                scores[key] = entry
            entry.score += gain
            entry.reasons.append((prop.lower(), source))

        for result in results.results[:fanout]:
            # Forward: pages this result's annotations point to.
            for prop, value in self.smr.annotations(result.title):
                if isinstance(value, str):
                    credit(value, prop, result.title)
            # Backward: pages whose annotations point at this result.
            for prop, source in self._reverse_links().get(
                result.title.strip().lower(), []
            ):
                credit(source, prop, result.title)

        ranked = sorted(scores.values(), key=lambda rec: (-rec.score, rec.title))
        return ranked[:k]
