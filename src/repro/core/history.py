"""Query history: recent and popular searches.

The demo's interface surfaces popular queries back to users (the same
"trends" idea the tag clouds serve, applied to search behaviour). The log
is in-memory, bounded, and ordered by a logical sequence counter — no
wall clock, so tests are deterministic.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, List, Tuple

from repro.errors import QueryError


def normalize_query_text(text: str) -> str:
    """Canonical form for counting: trimmed, lower-case, single-spaced."""
    canonical = " ".join(text.strip().lower().split())
    if not canonical:
        raise QueryError("cannot log an empty query")
    return canonical


class QueryLog:
    """A bounded log of executed searches."""

    def __init__(self, capacity: int = 1000):
        if capacity <= 0:
            raise QueryError(f"log capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._recent: Deque[Tuple[int, str, int, float]] = deque(maxlen=capacity)
        self._counts: Counter = Counter()
        self._sequence = 0

    def record(self, query_text: str, result_count: int, latency: float = 0.0) -> None:
        """Log one executed search, its result count and latency (seconds)."""
        canonical = normalize_query_text(query_text)
        self._sequence += 1
        if len(self._recent) == self.capacity:
            # The evicted entry leaves the popularity counts too, so
            # "popular" reflects the retained window, not all time.
            evicted = self._recent[0][1]
            self._counts[evicted] -= 1
            if self._counts[evicted] <= 0:
                del self._counts[evicted]
        self._recent.append((self._sequence, canonical, result_count, float(latency)))
        self._counts[canonical] += 1

    @property
    def total_logged(self) -> int:
        """Searches recorded over the log's lifetime (not the window)."""
        return self._sequence

    def recent(self, k: int = 10) -> List[str]:
        """The last ``k`` distinct queries, most recent first."""
        seen = []
        for _, query, _, _ in reversed(self._recent):
            if query not in seen:
                seen.append(query)
            if len(seen) == k:
                break
        return seen

    def popular(self, k: int = 10) -> List[Tuple[str, int]]:
        """The ``k`` most-run queries in the window, with counts."""
        return sorted(self._counts.items(), key=lambda item: (-item[1], item[0]))[:k]

    def zero_result_queries(self, k: int = 10) -> List[str]:
        """Recent queries that returned nothing (content-gap signal)."""
        seen = []
        for _, query, count, _ in reversed(self._recent):
            if count == 0 and query not in seen:
                seen.append(query)
            if len(seen) == k:
                break
        return seen

    def slow_queries(self, k: int = 10) -> List[Tuple[str, float]]:
        """The ``k`` slowest queries in the window, worst first.

        Each distinct query reports its worst observed latency, so popular
        and zero-result queries can be correlated with slow ones.
        """
        worst: dict = {}
        for _, query, _, latency in self._recent:
            if latency > worst.get(query, -1.0):
                worst[query] = latency
        ranked = sorted(worst.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def average_latency(self) -> float:
        """Mean latency (seconds) over the retained window; 0.0 when empty."""
        if not self._recent:
            return 0.0
        return sum(entry[3] for entry in self._recent) / len(self._recent)
