"""Corpus statistics: the platform overview numbers the demo's landing
pages show ("which institutions participate mostly, which is the most
popular project..." — the trends the tag clouds visualize, in exact form).

:func:`corpus_statistics` computes per-kind counts, property coverage,
and link-structure statistics (degree distributions, dangling fraction)
for one repository.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.smr.repository import SensorMetadataRepository


@dataclass
class LinkStats:
    """Degree statistics of one link structure."""

    edges: int
    dangling_fraction: float
    max_out_degree: int
    mean_out_degree: float


@dataclass
class CorpusStatistics:
    """Everything :func:`corpus_statistics` reports."""

    page_count: int
    pages_per_kind: Dict[str, int]
    property_usage: Dict[str, int]  # property -> pages using it
    property_coverage: Dict[str, float]  # property -> fraction of pages
    web_links: LinkStats
    semantic_links: LinkStats
    top_values: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)

    def format_report(self) -> str:
        """Render the statistics as an aligned text report."""
        lines = [f"pages: {self.page_count}"]
        for kind, count in sorted(self.pages_per_kind.items()):
            lines.append(f"  {kind:<12} {count}")
        lines.append(
            f"web links: {self.web_links.edges} edges, "
            f"{self.web_links.dangling_fraction:.0%} dangling, "
            f"max out-degree {self.web_links.max_out_degree}"
        )
        lines.append(
            f"semantic links: {self.semantic_links.edges} edges, "
            f"{self.semantic_links.dangling_fraction:.0%} dangling"
        )
        lines.append("property coverage:")
        for prop, coverage in sorted(
            self.property_coverage.items(), key=lambda item: -item[1]
        )[:10]:
            lines.append(f"  {prop:<20} {coverage:.0%}")
        return "\n".join(lines)


def _link_stats(graph) -> LinkStats:
    n = graph.n or 1
    degrees = [graph.out_degree(i) for i in range(graph.n)]
    dangling = sum(1 for d in degrees if d == 0)
    return LinkStats(
        edges=graph.edge_count,
        dangling_fraction=dangling / n,
        max_out_degree=max(degrees, default=0),
        mean_out_degree=sum(degrees) / n,
    )


def corpus_statistics(
    smr: SensorMetadataRepository, top_values_for: Tuple[str, ...] = ()
) -> CorpusStatistics:
    """Compute the statistics of ``smr``.

    ``top_values_for`` lists properties whose most-frequent values should
    be included (e.g. ``("project", "institution")`` for the "who
    participates most" trends).
    """
    titles = smr.titles()
    pages_per_kind: Counter = Counter(smr.kind_of(title) for title in titles)
    property_pages: Dict[str, set] = {}
    for title in titles:
        for prop, _ in smr.annotations(title):
            property_pages.setdefault(prop.lower(), set()).add(title)
    usage = {prop: len(pages) for prop, pages in property_pages.items()}
    total = len(titles) or 1
    coverage = {prop: count / total for prop, count in usage.items()}
    top_values: Dict[str, List[Tuple[str, int]]] = {}
    for prop in top_values_for:
        values = Counter(
            str(value) for value in smr.wiki.property_values(prop)
        )
        top_values[prop.lower()] = values.most_common(5)
    return CorpusStatistics(
        page_count=len(titles),
        pages_per_kind=dict(pages_per_kind),
        property_usage=usage,
        property_coverage=coverage,
        web_links=_link_stats(smr.wiki.link_graph()),
        semantic_links=_link_stats(smr.wiki.semantic_graph()),
        top_values=top_values,
    )
