"""The advanced search engine: Query Interface + Query Management.

The pipeline mirrors Fig. 1. A :class:`~repro.core.query.SearchQuery`
is decomposed into constraint sets:

- the keyword runs against the inverted index (basic search);
- each property filter runs against the *relational* store when the
  property is mapped to a column (SQL), and against the *RDF graph*
  otherwise (SPARQL) — the paper's "combination of SQL and SPARQL";
- kind and bounding-box constraints restrict further.

Strict mode intersects all constraint sets; relaxed mode unions the
property filters and reports a per-result **match degree** (the fraction
of predicates satisfied) — the quantity the map visualization colors by.
Results are ranked by the double-link PageRank metric blended with
keyword relevance.
"""

from __future__ import annotations

import heapq
import re
import threading
import time
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import obs

from repro.core.autocomplete import AutocompleteService
from repro.core.facets import facet_counts
from repro.core.privileges import ANONYMOUS, User
from repro.core.query import (
    PropertyFilter,
    SORT_PAGERANK,
    SORT_RELEVANCE,
    SearchQuery,
    parse_query,
)
from repro.core.ranking import PageRankRanker
from repro.core.recommend import Recommendation, Recommender
from repro.core.results import SearchResult, SearchResults
from repro.errors import QueryError, RelationalError
from repro.geo.point import GeoPoint
from repro.perf.cache import GenerationalLruCache, result_cache_key
from repro.perf.pool import WorkerPool, get_pool, parallel_map
from repro.smr.repository import SensorMetadataRepository

# Weighting of keyword relevance vs. PageRank in the default sort.
_RELEVANCE_WEIGHT = 0.6
_PAGERANK_WEIGHT = 0.4

# Distinguishes "caller wants the default cache" from an explicit None
# (= caching disabled) in AdvancedSearchEngine.__init__.
_DEFAULT_CACHE_SENTINEL: Any = object()


class AdvancedSearchEngine:
    """The paper's search system over one Sensor Metadata Repository.

    Repeated queries are served from a generation-stamped result cache
    (:mod:`repro.perf`): entries are keyed on the normalized query plus
    the user's privileges and stamped with the SMR mutation counter, so
    any page write invalidates every cached result lazily — post-edit
    searches can never observe pre-edit results. Set ``cache=None`` to
    disable caching (e.g. for benchmarking the raw pipeline); cached
    :class:`~repro.core.results.SearchResults` are shared between callers
    and must be treated as immutable.
    """

    def __init__(
        self,
        smr: SensorMetadataRepository,
        ranker: Optional[PageRankRanker] = None,
        cache: Optional[GenerationalLruCache] = _DEFAULT_CACHE_SENTINEL,
        slow_query_seconds: float = 0.25,
        pool: Optional[WorkerPool] = None,
        topk: bool = True,
        spatial_index: bool = True,
    ):
        self.smr = smr
        self.ranker = ranker or PageRankRanker(smr)
        self.autocomplete = AutocompleteService(smr, self.ranker)
        self.recommender = Recommender(smr, self.ranker)
        if cache is _DEFAULT_CACHE_SENTINEL:
            cache = GenerationalLruCache(capacity=256, name="query_results")
        self.cache = cache
        #: Queries at or above this wall-clock threshold emit a WARNING
        #: ``engine.slow_query`` event (with cache verdict, result count
        #: and privilege set) and count into ``engine_slow_queries_total``.
        self.slow_query_seconds = slow_query_seconds
        #: Worker pool for the per-query constraint fan-out; ``None``
        #: resolves to the process-wide default pool at query time.
        #: Pass ``WorkerPool(size=1)`` to force strictly serial execution.
        self.pool = pool
        #: When True (default) and the query carries a limit under a
        #: relevance/pagerank sort, result materialization is lazy: only
        #: the top-k survivors get a :class:`SearchResult` built. The
        #: returned lists are identical to the full-sort path.
        self.topk = topk
        #: When True (default), bounding-box constraints probe a
        #: generation-stamped R-tree over every located page instead of
        #: scanning all titles; ``False`` keeps the linear scan.
        self.spatial_index = spatial_index
        # Per-generation memos shared by all query threads: the
        # IRI -> title map every SPARQL filter needs, per-title GeoPoint
        # parses the bbox paths need, and the spatial R-tree the bbox
        # probe descends. All are stamped with the SMR mutation counter —
        # the same generation the result cache uses — and rebuilt lazily
        # after any write.
        self._iri_map_lock = threading.Lock()
        self._iri_map_memo: Optional[Tuple[int, Dict[str, str]]] = None
        self._location_memo: Optional[Tuple[int, Dict[str, Optional[GeoPoint]]]] = None
        self._spatial_lock = threading.Lock()
        self._spatial_memo: Optional[Tuple[int, Any]] = None  # (generation, RTreeIndex)
        from repro.core.history import QueryLog

        self.query_log = QueryLog()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def parse(self, text: str) -> SearchQuery:
        """Parse the compact query-string syntax."""
        return parse_query(text)

    def search(self, query: SearchQuery, user: User = ANONYMOUS) -> SearchResults:
        """Run an advanced search within the user's privileges.

        The result cache is consulted first: a hit skips the whole
        pipeline (SQL/SPARQL constraint evaluation, ranking, sorting) and
        costs one dict lookup. The generation is captured *before* the
        pipeline runs, so a write that lands mid-search stamps the entry
        as already stale — the conservative direction.
        """
        description = query.describe()
        key = generation = None
        if self.cache is not None:
            key = result_cache_key(query, user)
            generation = self._generation()
        registry = obs.get_registry()
        tracer = obs.get_tracer()
        event_log = obs.get_event_log()
        slowlog = obs.get_slow_query_log()
        prov_recorder = obs.get_provenance_recorder()
        if (
            not registry.enabled
            and not tracer.enabled
            and not event_log.enabled
            and not slowlog.enabled
            and not prov_recorder.enabled
        ):
            # Observability off: skip the timers and span entirely so the
            # hot path costs only this branch (the <1% disabled target).
            if key is not None:
                cached = self.cache.get(key, generation)
                if cached is not None:
                    self.query_log.record(description, cached.total_candidates)
                    return cached
            results = self._search(query, user, description)
            if key is not None:
                self.cache.put(key, generation, results)
            self.query_log.record(description, results.total_candidates)
            return results
        # Observability on: cache hits are still served queries, so they
        # flow through the same span and latency histogram (tagged with a
        # ``cache`` attribute) — percentiles reflect what callers see.
        prov = None
        if prov_recorder.enabled:
            prov = obs.QueryProvenance(
                description, privileges=_privilege_label(user)
            )
        start = time.perf_counter()
        verdict = "uncached"
        try:
            with tracer.span("engine.search", query=description) as span:
                if key is not None:
                    cached, verdict = self.cache.lookup(key, generation)
                else:
                    cached = None
                if cached is not None:
                    results = cached
                else:
                    results = self._search(query, user, description, prov=prov)
                if key is not None:
                    span.set_attribute("cache", verdict)
        except Exception:
            registry.counter(
                "engine_query_errors_total", "Searches that raised an error."
            ).inc()
            event_log.error("engine.search_error", query=description)
            raise
        elapsed = time.perf_counter() - start
        if prov is not None:
            prov.seconds = elapsed
            prov.trace_id = obs.current_trace_id()
            prov.generation = list(generation) if generation is not None else None
            prov.cache = verdict
            prov_recorder.record(prov)
        if slowlog.enabled:
            # Hand the slow log the waterfall snapshot already in hand
            # (no planner round-trip); the log deep-copies only entries
            # it actually retains.
            plan = None
            if prov is not None and prov.stages:
                plan = {
                    "stages": [stage.to_dict() for stage in prov.stages],
                    "waterfall": [dict(step) for step in prov.waterfall],
                }
            slowlog.record(
                description,
                elapsed,
                trace_id=obs.current_trace_id(),
                cache=verdict,
                results=results.total_candidates,
                plan=plan,
            )
        if key is not None and verdict != "hit":
            self.cache.put(key, generation, results)
        registry.counter(
            "engine_queries_total", "Advanced searches executed."
        ).inc()
        registry.histogram(
            "engine_query_seconds", "Advanced-search latency in seconds."
        ).observe(elapsed)
        registry.histogram(
            "engine_result_count",
            "Distribution of per-query candidate counts.",
            buckets=obs.DEFAULT_COUNT_BUCKETS,
        ).observe(results.total_candidates)
        if results.total_candidates == 0:
            registry.counter(
                "engine_zero_result_queries_total", "Searches that matched nothing."
            ).inc()
        if event_log.enabled:
            privileges = _privilege_label(user)
            event_log.info(
                "engine.search",
                query=description,
                seconds=elapsed,
                cache=verdict,
                results=results.total_candidates,
                privileges=privileges,
            )
            if elapsed >= self.slow_query_seconds:
                event_log.warning(
                    "engine.slow_query",
                    query=description,
                    seconds=elapsed,
                    threshold=self.slow_query_seconds,
                    cache=verdict,
                    results=results.total_candidates,
                    privileges=privileges,
                )
                registry.counter(
                    "engine_slow_queries_total",
                    "Searches at or above the slow-query threshold.",
                ).inc()
        self.query_log.record(description, results.total_candidates, latency=elapsed)
        return results

    def _evaluate_constraints(
        self, query: SearchQuery, timed: bool
    ) -> Tuple[List[Any], List[float]]:
        """Evaluate the query's independent constraints, in declaration order.

        Fans out the keyword search, each SQL/SPARQL property filter, and
        the bbox scan — onto the worker pool; the SMR's reader–writer lock
        keeps the concurrent reads safe under writes. parallel_map
        preserves input order (and raises the first failure by input
        position), so reassembly in :meth:`_search` is identical to the
        serial loop. ``timed=True`` additionally returns per-constraint
        wall seconds for provenance. The sharded engine overrides this
        seam to fan out per (constraint, shard) instead.
        """
        jobs: List[Callable[[], Any]] = []
        if query.keyword:
            jobs.append(partial(self.smr.keyword_search, query.keyword))
        jobs.extend(partial(self._titles_matching_filter, flt) for flt in query.filters)
        if query.bbox is not None:
            jobs.append(partial(self._titles_in_bbox, query.bbox))
        if timed:
            jobs = [_timed_job(job) for job in jobs]
        outputs = parallel_map(
            lambda job: job(), jobs, pool=self.pool, label="engine.constraint"
        )
        if timed:
            return [value for _, value in outputs], [seconds for seconds, _ in outputs]
        return list(outputs), []

    def _search(
        self,
        query: SearchQuery,
        user: User,
        description: Optional[str] = None,
        prov: Optional[obs.QueryProvenance] = None,
    ) -> SearchResults:
        """Execute the Fig. 1 pipeline for one parsed query.

        With ``prov=None`` (the default, and the only mode the disabled
        fast path uses) this is the bare pipeline: no timers, no
        per-stage bookkeeping, nothing allocated beyond the result sets
        themselves. With a :class:`~repro.obs.provenance.QueryProvenance`
        the same pipeline additionally records each constraint's wall
        time, match count and selectivity, the intersection waterfall,
        the privilege filter and the ranking path — the candidate *sets*
        and result lists are identical either way (intersection is
        order-independent and the waterfall intersects in declaration
        order).
        """
        if query.kind is not None:
            user.check_kind(query.kind)
        relevance: Dict[str, float] = {}
        constraint_sets: List[Set[str]] = []

        outputs, job_seconds = self._evaluate_constraints(query, timed=prov is not None)
        if prov is not None:
            corpus = len(self.smr.titles())
        set_names: List[str] = []

        cursor = 0
        if query.keyword:
            hits = outputs[cursor]
            relevance = {hit.doc_id: hit.score for hit in hits}
            constraint_sets.append(set(relevance))
            if prov is not None:
                name = f"keyword={query.keyword!r}"
                prov.add_stage(
                    name, "InvertedIndexScan", job_seconds[cursor], len(hits), corpus
                )
                set_names.append(name)
            cursor += 1

        if query.kind is not None:
            if prov is not None:
                kind_start = time.perf_counter()
                kind_titles = set(self.smr.titles(query.kind))
                name = f"kind={query.kind}"
                prov.add_stage(
                    name,
                    "KindTitleLookup",
                    time.perf_counter() - kind_start,
                    len(kind_titles),
                    corpus,
                )
                set_names.append(name)
                constraint_sets.append(kind_titles)
            else:
                constraint_sets.append(set(self.smr.titles(query.kind)))

        filter_matches = list(
            zip(query.filters, outputs[cursor : cursor + len(query.filters)])
        )
        if prov is not None:
            for offset, (flt, titles) in enumerate(filter_matches):
                prov.add_stage(
                    flt.describe(),
                    self._filter_strategy(flt),
                    job_seconds[cursor + offset],
                    len(titles),
                    corpus,
                )
        cursor += len(query.filters)
        if filter_matches:
            if query.relaxed:
                union: Set[str] = set()
                for _, titles in filter_matches:
                    union |= titles
                constraint_sets.append(union)
                if prov is not None:
                    set_names.append(
                        "any-of(" + ", ".join(f.describe() for f, _ in filter_matches) + ")"
                    )
            else:
                for flt, titles in filter_matches:
                    constraint_sets.append(titles)
                    if prov is not None:
                        set_names.append(flt.describe())

        if query.bbox is not None:
            constraint_sets.append(outputs[cursor])
            if prov is not None:
                bbox = query.bbox
                name = (
                    f"bbox(lat in [{bbox.south}, {bbox.north}], "
                    f"lon in [{bbox.west}, {bbox.east}])"
                )
                prov.add_stage(
                    name,
                    "RTreeProbe" if self.spatial_index else "BBoxScan",
                    job_seconds[cursor],
                    len(outputs[cursor]),
                    corpus,
                )
                set_names.append(name)

        if constraint_sets:
            if prov is not None:
                # Intersect sequentially in declaration order so each
                # step's before/after counts land in the waterfall; the
                # final set equals set.intersection(*constraint_sets).
                candidates = set(constraint_sets[0])
                prov.add_waterfall_step(set_names[0], None, len(candidates))
                for name, cset in zip(set_names[1:], constraint_sets[1:]):
                    before = len(candidates)
                    candidates &= cset
                    prov.add_waterfall_step(name, before, len(candidates))
            else:
                candidates = set.intersection(*constraint_sets)
        else:
            candidates = set(self.smr.titles())
            if prov is not None:
                prov.add_waterfall_step("(no constraints)", None, len(candidates))

        # One locked snapshot instead of a kind_of() lock round-trip per
        # candidate; every candidate came from the repository, so the
        # lookup cannot miss.
        kind_by_key = self.smr.kind_map()
        allowed: List[Tuple[str, str]] = []
        for title in candidates:
            kind = kind_by_key[title.strip().lower()]
            if user.policy.can_read(kind):
                allowed.append((title, kind))
        total = len(allowed)
        if prov is not None:
            prov.set_privilege_filter(len(candidates), total)

        if self._use_topk(query):
            results = self._select_topk(query, allowed, relevance, filter_matches)
            ranking_path = "heap-topk"
        else:
            results = [
                self._build_result(title, kind, relevance, filter_matches)
                for title, kind in allowed
            ]
            self._score_and_sort(query, results)
            results = results[query.offset :]
            if query.limit is not None:
                results = results[: query.limit]
            ranking_path = "full-sort"
        if prov is not None:
            prov.set_ranking(query.sort, ranking_path, len(results))
        if description is None:
            description = query.describe()
        return SearchResults(results, total, description)

    def search_explained(
        self, query: SearchQuery, user: User = ANONYMOUS
    ) -> Tuple[SearchResults, obs.QueryProvenance]:
        """Run ``query`` with full provenance, bypassing the result cache.

        The cache bypass is deliberate: a cached hit would yield an empty
        waterfall, and the point of ``explain=full`` / ``/explore`` is to
        watch the real pipeline run. The record is also pushed into the
        provenance recorder (when enabled) so ``/debug`` surfaces can
        find it again by trace id.
        """
        description = query.describe()
        prov = obs.QueryProvenance(description, privileges=_privilege_label(user))
        prov.cache = "bypass"
        start = time.perf_counter()
        results = self._search(query, user, description, prov=prov)
        prov.seconds = time.perf_counter() - start
        prov.trace_id = obs.current_trace_id()
        prov.generation = list(self._generation())
        recorder = obs.get_provenance_recorder()
        if recorder.enabled:
            recorder.record(prov)
        self.query_log.record(description, results.total_candidates, latency=prov.seconds)
        return results, prov

    def _filter_strategy(self, flt: PropertyFilter) -> str:
        """The access path a property filter resolves to (for provenance)."""
        for kind in self.smr.mapping.kinds:
            if self.smr.mapping.column_for_property(kind, flt.prop) is not None:
                return "SqlFilter"
        return "SparqlFilter"

    def _generation(self) -> Tuple[int, int]:
        """The cache generation: (SMR mutations, ranker epoch).

        Any page write bumps the first component; a forced
        :meth:`~repro.core.ranking.PageRankRanker.refresh` bumps the
        second — cached results embed PageRank scores, so both must
        invalidate them.
        """
        return (self.smr.mutation_count, getattr(self.ranker, "epoch", 0))

    def cache_info(self) -> Dict[str, Any]:
        """Result-cache statistics for ``/api/stats`` and diagnostics."""
        if self.cache is None:
            return {"enabled": False}
        stats = self.cache.stats
        return {
            "enabled": True,
            "entries": len(self.cache),
            "capacity": self.cache.capacity,
            "generation": list(self._generation()),
            "hits": stats.hits,
            "misses": stats.misses,
            "stale": stats.stale,
            "evictions": stats.evictions,
            "hit_rate": stats.hit_rate,
        }

    def explain_search(self, query: SearchQuery) -> Dict[str, Any]:
        """Describe how each constraint of ``query`` would be evaluated.

        Nothing is executed except relational ``EXPLAIN`` — mapped
        property filters show the cost-based plan the SQL planner would
        choose (one entry per mapped kind), unmapped filters report the
        SPARQL fallback, and a bbox constraint reports whether it would
        probe the generation-stamped R-tree or fall back to the linear
        scan. Backs ``/debug/plan`` and ``explain=1`` on ``/api/search``.
        """
        constraints: List[Dict[str, Any]] = []
        if query.keyword:
            constraints.append(
                {
                    "constraint": f"keyword={query.keyword!r}",
                    "strategy": "InvertedIndexScan",
                    "detail": "BM25-ranked lookup in the text index",
                }
            )
        if query.kind is not None:
            constraints.append(
                {
                    "constraint": f"kind={query.kind}",
                    "strategy": "KindTitleLookup",
                    "detail": "direct per-kind title listing",
                }
            )
        for flt in query.filters:
            mapped_kinds = [
                kind
                for kind in self.smr.mapping.kinds
                if self.smr.mapping.column_for_property(kind, flt.prop) is not None
            ]
            if not mapped_kinds:
                constraints.append(
                    {
                        "constraint": flt.describe(),
                        "strategy": "SparqlFilter",
                        "detail": "triple-pattern match + FILTER over the RDF graph",
                    }
                )
                continue
            tables: List[Dict[str, Any]] = []
            for kind in mapped_kinds:
                column = self.smr.mapping.column_for_property(kind, flt.prop)
                condition = _sql_condition(column, flt)
                sql = f"SELECT title FROM {kind} WHERE {condition}"
                entry: Dict[str, Any] = {"kind": kind, "sql": sql}
                try:
                    entry["plan"] = [row[0] for row in self.smr.sql(f"EXPLAIN {sql}")]
                except RelationalError as exc:
                    entry["error"] = str(exc)
                tables.append(entry)
            constraints.append(
                {
                    "constraint": flt.describe(),
                    "strategy": "SqlFilter",
                    "tables": tables,
                }
            )
        if query.bbox is not None:
            bbox = query.bbox
            box = (
                f"lat in [{bbox.south}, {bbox.north}], "
                f"lon in [{bbox.west}, {bbox.east}]"
            )
            entry = {"constraint": f"bbox({box})"}
            if self.spatial_index:
                entry["strategy"] = "RTreeProbe"
                entry["detail"] = "generation-stamped R-tree over located pages"
                entry["index"] = self.spatial_index_info()
            else:
                entry["strategy"] = "BBoxScan"
                entry["detail"] = "linear scan over every located page"
            constraints.append(entry)
        return {
            "query": query.describe(),
            "combine": (
                "union of filter matches, intersected with other constraints"
                if query.relaxed
                else "intersection of all constraint sets"
            ),
            "constraints": constraints,
        }

    def facets(self, results: SearchResults, prop: str) -> List[Tuple[Any, int]]:
        """Facet counts of ``prop`` over a result set (for bar/pie charts)."""
        return facet_counts(self.smr, results.titles, prop)

    def recommend(self, results: SearchResults, k: int = 5) -> List[Recommendation]:
        """Pages related to the result set (the recommendation mechanism)."""
        return self.recommender.recommend(results, k=k)

    def related_pages(self, title: str, k: int = 5):
        """Pages most related to ``title`` via personalized PageRank."""
        return self.ranker.related_pages(title, k=k)

    def snippet(self, title: str, query: str, window: int = 24):
        """A highlighted fragment of the page's text for ``query``."""
        from repro.text.snippet import best_snippet

        text = self.smr.wiki.parsed(title).plain_text
        return best_snippet(f"{title} {text}", query, window=window)

    def did_you_mean(self, keyword: str, limit: int = 3) -> List[str]:
        """Spelling suggestions for a keyword that matched nothing.

        Candidates come from the live vocabulary: property names, string
        property values and title words; ties break toward more frequent
        terms. Multi-word keywords are corrected word by word.
        """
        from repro.text.fuzzy import suggest
        from repro.text.tokenize import tokenize

        vocabulary: Dict[str, float] = {}
        for title in self.smr.titles():
            for token in tokenize(title):
                vocabulary[token] = vocabulary.get(token, 0.0) + 1.0
            for prop, value in self.smr.annotations(title):
                vocabulary[prop.lower()] = vocabulary.get(prop.lower(), 0.0) + 1.0
                if isinstance(value, str):
                    for token in tokenize(value):
                        vocabulary[token] = vocabulary.get(token, 0.0) + 1.0
        corrections = []
        for word in tokenize(keyword):
            if word in vocabulary:
                corrections.append([word])
                continue
            options = suggest(word, list(vocabulary), weights=vocabulary, limit=limit)
            corrections.append(options or [word])
        suggestions = []
        for option in corrections[0] if corrections else []:
            rest = [words[0] for words in corrections[1:]]
            suggestions.append(" ".join([option, *rest]))
        keyword_normalized = " ".join(tokenize(keyword))
        return [s for s in suggestions[:limit] if s != keyword_normalized]

    # ------------------------------------------------------------------
    # Constraint evaluation
    # ------------------------------------------------------------------

    def _titles_matching_filter(self, flt: PropertyFilter) -> Set[str]:
        """Resolve one property filter via SQL (mapped) or SPARQL (not)."""
        mapped_kinds = [
            kind
            for kind in self.smr.mapping.kinds
            if self.smr.mapping.column_for_property(kind, flt.prop) is not None
        ]
        if mapped_kinds:
            return self._sql_filter(flt, mapped_kinds)
        return self._sparql_filter(flt)

    def _sql_filter(self, flt: PropertyFilter, kinds: List[str]) -> Set[str]:
        matches: Set[str] = set()
        errors = []
        for kind in kinds:
            column = self.smr.mapping.column_for_property(kind, flt.prop)
            condition = _sql_condition(column, flt)
            try:
                result = self.smr.sql(f"SELECT title FROM {kind} WHERE {condition}")
            except RelationalError as exc:
                errors.append(f"{kind}: {exc}")
                continue
            matches.update(row[0] for row in result)
        if errors and not matches and len(errors) == len(kinds):
            raise QueryError(
                f"filter {flt.describe()} failed on every kind: {'; '.join(errors)}"
            )
        return matches

    def _sparql_filter(self, flt: PropertyFilter) -> Set[str]:
        prop_local = flt.prop.strip().lower().replace(" ", "_")
        condition = _sparql_condition(flt)
        query = (
            "PREFIX prop: <http://repro.example.org/property/> "
            f"SELECT ?s WHERE {{ ?s prop:{prop_local} ?v . FILTER({condition}) }}"
        )
        result = self.smr.sparql(query)
        matches: Set[str] = set()
        iri_to_title = self._iri_title_map()
        for term in result.column("s"):
            title = iri_to_title.get(getattr(term, "value", None))
            if title is not None:
                matches.add(title)
        return matches

    def _iri_title_map(self) -> Dict[str, str]:
        """The IRI -> title map, memoized per SMR generation.

        Every SPARQL-backed filter needs this map; before memoization a
        three-SPARQL-filter query rebuilt it three times. The generation
        is read *before* the titles, so a concurrent write can at worst
        stamp fresh data with a stale generation (rebuilt next query),
        never stale data with a fresh one.
        """
        from repro.wiki.site import title_to_iri

        generation = self.smr.mutation_count
        memo = self._iri_map_memo
        if memo is not None and memo[0] == generation:
            return memo[1]
        with self._iri_map_lock:
            memo = self._iri_map_memo
            if memo is not None and memo[0] == generation:
                return memo[1]
            mapping = {title_to_iri(title).value: title for title in self.smr.titles()}
            self._iri_map_memo = (generation, mapping)
            return mapping

    def _titles_in_bbox(self, bbox) -> Set[str]:
        """Titles of pages located inside ``bbox``.

        One generation read up front is shared by both paths — the
        R-tree probe and the fallback scan can never disagree about
        which snapshot they serve, and a memo hit re-parses nothing.
        ``BoundingBox.contains`` is a plain inclusive axis test (no
        antimeridian wrap), exactly the R-tree's box semantics, so the
        probe result needs no per-title re-verification.
        """
        generation = self.smr.mutation_count
        if self.spatial_index:
            index = self._spatial_index_for(generation)
            return set(index.box(bbox.south, bbox.north, bbox.west, bbox.east))
        matches: Set[str] = set()
        for title in self.smr.titles():
            location = self._cached_location(generation, title)
            if location is not None and bbox.contains(location):
                matches.add(title)
        return matches

    def _spatial_index_for(self, generation: int):
        """The R-tree over every located page, memoized per generation.

        Same double-checked-lock shape as :meth:`_iri_title_map`: the
        generation was read *before* the titles, so a write landing
        mid-build at worst stamps fresh data with a stale generation
        (rebuilt on the next spatial query), never the reverse.
        """
        from repro.relational.indexes import RTreeIndex

        memo = self._spatial_memo
        if memo is not None and memo[0] == generation:
            return memo[1]
        with self._spatial_lock:
            memo = self._spatial_memo
            if memo is not None and memo[0] == generation:
                return memo[1]
            index = RTreeIndex("engine_spatial", columns=("latitude", "longitude"))
            for title in self.smr.titles():
                location = self._cached_location(generation, title)
                if location is not None:
                    index.insert((location.lat, location.lon), title)
            self._spatial_memo = (generation, index)
            return index

    def spatial_index_info(self) -> Dict[str, Any]:
        """Spatial-index state for ``/api/stats`` and the health probe.

        ``generation`` is the SMR mutation count the memoized R-tree was
        built at (None before the first spatial query); comparing it with
        ``current_generation`` tells whether the next bbox probe will
        rebuild.
        """
        memo = self._spatial_memo
        info: Dict[str, Any] = {
            "enabled": self.spatial_index,
            "generation": memo[0] if memo is not None else None,
            "current_generation": self.smr.mutation_count,
        }
        if memo is not None:
            info.update(memo[1].statistics())
        return info

    def _location_of(self, title: str) -> Optional[GeoPoint]:
        """Per-title GeoPoint, cached by SMR generation."""
        return self._cached_location(self.smr.mutation_count, title)

    def _cached_location(self, generation: int, title: str) -> Optional[GeoPoint]:
        """Look up (or parse) ``title``'s location at ``generation``.

        Only the first spatial query after a write pays the annotation
        walk. Same generation-before-data ordering as
        :meth:`_iri_title_map`; the dict update is lock-free (single
        bytecode-level store, and a lost race merely re-parses).
        """
        memo = self._location_memo
        if memo is None or memo[0] != generation:
            memo = (generation, {})
            self._location_memo = memo
        cache = memo[1]
        if title in cache:
            return cache[title]
        location = self._parse_location(title)
        cache[title] = location
        return location

    def _parse_location(self, title: str) -> Optional[GeoPoint]:
        annotations = dict(
            (prop.lower(), value) for prop, value in self.smr.annotations(title)
        )
        lat = annotations.get("latitude")
        lon = annotations.get("longitude")
        if isinstance(lat, (int, float)) and isinstance(lon, (int, float)):
            try:
                return GeoPoint(float(lat), float(lon))
            except Exception:
                return None
        return None

    # ------------------------------------------------------------------
    # Result construction and ranking
    # ------------------------------------------------------------------

    def _build_result(
        self,
        title: str,
        kind: str,
        relevance: Dict[str, float],
        filter_matches: List[Tuple[PropertyFilter, Set[str]]],
    ) -> SearchResult:
        if filter_matches:
            satisfied = sum(1 for _, titles in filter_matches if title in titles)
            match_degree = satisfied / len(filter_matches)
        else:
            match_degree = 1.0
        annotations = {
            prop.lower(): value for prop, value in self.smr.annotations(title)
        }
        return SearchResult(
            title=title,
            kind=kind,
            relevance=relevance.get(title, 0.0),
            pagerank=self.ranker.score(title),
            match_degree=match_degree,
            annotations=annotations,
            location=self._location_of(title),
        )

    def _use_topk(self, query: SearchQuery) -> bool:
        """Whether the lazy heap-based top-k path applies to this query.

        Only the score sorts qualify: a property sort needs every
        result's property value (and the missing-last partition)
        materialized, so it keeps the full build-then-sort path.
        """
        return (
            self.topk
            and query.limit is not None
            and query.sort in (SORT_PAGERANK, SORT_RELEVANCE)
        )

    def _select_topk(
        self,
        query: SearchQuery,
        allowed: List[Tuple[str, str]],
        relevance: Dict[str, float],
        filter_matches: List[Tuple[PropertyFilter, Set[str]]],
    ) -> List[SearchResult]:
        """Materialize only the page of results the query asked for.

        Scores come from scalars already in hand (the relevance dict, the
        ranker's score map, the match degree) using the exact float
        expressions of :meth:`_score_and_sort`, and ``heapq.nlargest`` /
        ``nsmallest`` picks ``offset + limit`` entries under the same
        ``(score, title)`` key the full sort uses. ``nlargest(k, data,
        key)`` is documented equivalent to ``sorted(data, key=key,
        reverse=True)[:k]`` and the key is unique per title, so the
        returned page is identical to the full-sort path's — only the
        survivors ever get a :class:`SearchResult` (annotation dict,
        GeoPoint) built.
        """
        if not allowed:
            return []
        pagerank = self.ranker.scores()
        n_filters = len(filter_matches)

        def degree(title: str) -> float:
            if not n_filters:
                return 1.0
            satisfied = sum(1 for _, titles in filter_matches if title in titles)
            return satisfied / n_filters

        scored: List[Tuple[float, str, str]] = []
        if query.sort == SORT_PAGERANK:
            for title, kind in allowed:
                scored.append((degree(title) * pagerank.get(title, 0.0), title, kind))
        else:  # SORT_RELEVANCE — same maxima and blend as _score_and_sort
            max_rel = max((relevance.get(t, 0.0) for t, _ in allowed), default=0.0) or 1.0
            max_pr = max((pagerank.get(t, 0.0) for t, _ in allowed), default=0.0) or 1.0
            for title, kind in allowed:
                blended = (
                    _RELEVANCE_WEIGHT * (relevance.get(title, 0.0) / max_rel)
                    + _PAGERANK_WEIGHT * (pagerank.get(title, 0.0) / max_pr)
                )
                scored.append((degree(title) * blended, title, kind))
        k = query.offset + query.limit
        select = heapq.nlargest if query.descending else heapq.nsmallest
        page = select(k, scored, key=lambda entry: (entry[0], entry[1]))
        results = []
        for score, title, kind in page[query.offset :]:
            result = self._build_result(title, kind, relevance, filter_matches)
            result.score = score
            results.append(result)
        return results

    def _score_and_sort(self, query: SearchQuery, results: List[SearchResult]) -> None:
        if not results:
            return
        if query.sort == SORT_PAGERANK:
            for result in results:
                result.score = result.match_degree * result.pagerank
        elif query.sort == SORT_RELEVANCE:
            max_rel = max((r.relevance for r in results), default=0.0) or 1.0
            max_pr = max((r.pagerank for r in results), default=0.0) or 1.0
            for result in results:
                blended = (
                    _RELEVANCE_WEIGHT * (result.relevance / max_rel)
                    + _PAGERANK_WEIGHT * (result.pagerank / max_pr)
                )
                result.score = result.match_degree * blended
        else:
            # Sort by a property value; missing values always sort last.
            prop = query.sort
            present = [r for r in results if r.get(prop) is not None]
            if not present:
                raise QueryError(f"cannot sort by {prop!r}: no result has that property")
            missing = [r for r in results if r.get(prop) is None]
            for result in results:
                result.score = _numeric_or_zero(result.get(prop))
            present.sort(
                key=lambda r: _typed_value_key(r.get(prop)), reverse=query.descending
            )
            results[:] = present + missing
            return
        results.sort(key=lambda r: (r.score, r.title), reverse=query.descending)


# ----------------------------------------------------------------------
# Provenance helpers
# ----------------------------------------------------------------------


def _timed_job(job: Callable[[], Any]) -> Callable[[], Tuple[float, Any]]:
    """Wrap a constraint job to return ``(seconds, value)``.

    Only used when provenance is active; the wrapper is what makes the
    per-constraint wall times in the waterfall real measurements of the
    parallel fan-out, not serialized re-runs.
    """

    def run() -> Tuple[float, Any]:
        start = time.perf_counter()
        value = job()
        return time.perf_counter() - start, value

    return run


def _privilege_label(user: User) -> str:
    """The compact privilege-set label used by events and provenance."""
    allowed = user.policy.allowed_kinds
    return "*" if allowed is None else ",".join(sorted(allowed))


# ----------------------------------------------------------------------
# Condition rendering
# ----------------------------------------------------------------------


def _sql_quote(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _sql_condition(column: str, flt: PropertyFilter) -> str:
    if flt.op == "~":
        pattern = str(flt.value).replace("'", "''")
        return f"{column} LIKE '%{pattern}%'"
    op = flt.op
    return f"{column} {op} {_sql_quote(flt.value)}"


def _sparql_condition(flt: PropertyFilter) -> str:
    if flt.op == "~":
        pattern = re.escape(str(flt.value)).replace('"', '\\"')
        return f'REGEX(STR(?v), "{pattern}", "i")'
    if isinstance(flt.value, bool):
        rendered = "true" if flt.value else "false"
    elif isinstance(flt.value, (int, float)):
        rendered = repr(flt.value)
    else:
        escaped = str(flt.value).replace("\\", "\\\\").replace('"', '\\"')
        rendered = f'"{escaped}"'
    return f"?v {flt.op} {rendered}"


def _numeric_or_zero(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return 0.0


def _typed_value_key(value: Any):
    # Rank by type so mixed-typed property values still sort totally.
    if isinstance(value, bool):
        return (0, float(value), "")
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    return (1, 0.0, str(value))
