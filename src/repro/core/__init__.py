"""The advanced metadata search system — the paper's contribution.

Everything the demo shows sits in this package:

- :mod:`repro.core.query` — the advanced query model (keyword, property
  filters, sort by / order by, kind, map bounding box) plus the compact
  query-string syntax the examples use;
- :mod:`repro.core.privileges` — users and access policies ("takes
  user's inputs for queries within their privileges");
- :mod:`repro.core.ranking` — the double-link PageRank ranking metric;
- :mod:`repro.core.engine` — the Query Interface + Query Management
  modules: candidate retrieval through SQL *and* SPARQL, match-degree
  scoring, ranking, faceting;
- :mod:`repro.core.recommend` — the recommendation mechanism combining
  query inputs with high-PageRank properties;
- :mod:`repro.core.autocomplete` — autocomplete and the dynamic
  drop-downs of Fig. 7;
- :mod:`repro.core.facets` — facet counts over result sets.
"""

from repro.core.query import PropertyFilter, SearchQuery, parse_query
from repro.core.privileges import AccessPolicy, User
from repro.core.results import SearchResult, SearchResults
from repro.core.ranking import PageRankRanker
from repro.core.engine import AdvancedSearchEngine
from repro.core.recommend import Recommendation, Recommender
from repro.core.autocomplete import AutocompleteService
from repro.core.facets import facet_counts
from repro.core.history import QueryLog
from repro.core.stats import CorpusStatistics, corpus_statistics

__all__ = [
    "PropertyFilter",
    "SearchQuery",
    "parse_query",
    "AccessPolicy",
    "User",
    "SearchResult",
    "SearchResults",
    "PageRankRanker",
    "AdvancedSearchEngine",
    "Recommendation",
    "Recommender",
    "AutocompleteService",
    "facet_counts",
    "CorpusStatistics",
    "corpus_statistics",
    "QueryLog",
]
