"""Users and access privileges.

"The Query Interface module takes user's inputs for queries within their
privileges, since a user may not have a full access to the whole
metadata." Privileges here are per metadata kind: a user may read all
kinds (the default anonymous policy on the public platform), or be
restricted to a whitelist — queries over forbidden kinds are rejected and
results of forbidden kinds are filtered out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional

from repro.errors import AccessDeniedError
from repro.smr.model import KIND_ORDER


@dataclass(frozen=True)
class AccessPolicy:
    """What a user may read. ``None`` whitelist means everything."""

    allowed_kinds: Optional[FrozenSet[str]] = None

    @classmethod
    def allow_all(cls) -> "AccessPolicy":
        return cls(None)

    @classmethod
    def restrict_to(cls, kinds: Iterable[str]) -> "AccessPolicy":
        kinds = frozenset(kind.lower() for kind in kinds)
        unknown = kinds - set(KIND_ORDER)
        if unknown:
            raise AccessDeniedError(f"policy names unknown kinds: {sorted(unknown)}")
        return cls(kinds)

    def can_read(self, kind: str) -> bool:
        """True when metadata of ``kind`` is readable under this policy."""
        return self.allowed_kinds is None or kind.lower() in self.allowed_kinds


@dataclass(frozen=True)
class User:
    """A (named) search user with an access policy."""

    name: str = "anonymous"
    policy: AccessPolicy = field(default_factory=AccessPolicy.allow_all)

    def check_kind(self, kind: str) -> None:
        """Raise :class:`AccessDeniedError` unless ``kind`` is readable."""
        if not self.policy.can_read(kind):
            raise AccessDeniedError(
                f"user {self.name!r} may not query metadata of kind {kind!r}"
            )


ANONYMOUS = User()
