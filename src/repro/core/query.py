"""The advanced query model and its compact string syntax.

A :class:`SearchQuery` captures everything the Fig. 7 form offers:
keyword text, a metadata kind, property filters with comparison
operators, sort-by / order-by, limit, relaxed matching (which powers the
match-degree coloring on maps) and an optional geographic bounding box
for map-based browsing.

The string syntax used by examples and the web API::

    keyword=wind kind=sensor sensor_type=wind speed sort=pagerank
    elevation_m>=2000 status!=offline order=desc limit=20

Space-separated ``field<op>value`` clauses; the reserved fields are
``keyword``, ``kind``, ``sort``, ``order``, ``limit``, ``offset``,
``relaxed`` and
``bbox`` (south,west,north,east) — anything else becomes a property
filter. A value may contain spaces; it extends until the next clause.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, List, Optional, Tuple

from repro.errors import QueryError
from repro.geo.bbox import BoundingBox

OPERATORS = ("<=", ">=", "!=", "=", "<", ">", "~")  # ~ is LIKE/contains

SORT_RELEVANCE = "relevance"
SORT_PAGERANK = "pagerank"
_RESERVED = {"keyword", "kind", "sort", "order", "limit", "offset", "relaxed", "bbox"}


@dataclass(frozen=True)
class PropertyFilter:
    """One predicate: ``prop <op> value``; ``~`` means substring match."""

    prop: str
    op: str
    value: Any

    def __post_init__(self):
        if self.op not in OPERATORS:
            raise QueryError(f"unknown operator {self.op!r}; use one of {OPERATORS}")
        if not self.prop:
            raise QueryError("property filter needs a property name")

    def describe(self) -> str:
        """Human-readable form, e.g. ``elevation_m >= 2000``."""
        return f"{self.prop} {self.op} {self.value!r}"


@dataclass(frozen=True)
class SearchQuery:
    """A fully specified advanced search."""

    keyword: str = ""
    kind: Optional[str] = None
    filters: Tuple[PropertyFilter, ...] = ()
    sort: str = SORT_RELEVANCE  # 'relevance', 'pagerank', or a property name
    descending: bool = True
    limit: Optional[int] = 20
    offset: int = 0
    relaxed: bool = False  # OR semantics + partial match degrees
    bbox: Optional[BoundingBox] = None

    def __post_init__(self):
        if self.limit is not None and self.limit <= 0:
            raise QueryError(f"limit must be positive, got {self.limit}")
        if self.offset < 0:
            raise QueryError(f"offset must be non-negative, got {self.offset}")
        if not self.keyword and not self.filters and self.kind is None and self.bbox is None:
            raise QueryError("empty query: give a keyword, kind, filter or bbox")

    @property
    def is_spatial(self) -> bool:
        return self.bbox is not None

    def with_limit(self, limit: Optional[int]) -> "SearchQuery":
        """A copy of this query with a different limit."""
        return replace(self, limit=limit)

    def describe(self) -> str:
        """Human-readable echo of the whole query (shown with results)."""
        parts = []
        if self.keyword:
            parts.append(f"keyword={self.keyword!r}")
        if self.kind:
            parts.append(f"kind={self.kind}")
        parts.extend(f.describe() for f in self.filters)
        parts.append(f"sort={self.sort} {'desc' if self.descending else 'asc'}")
        if self.relaxed:
            parts.append("relaxed")
        if self.bbox:
            parts.append("bbox")
        return ", ".join(parts)


_CLAUSE_RE = re.compile(
    r"(?P<prop>[A-Za-z_][A-Za-z0-9_]*)\s*(?P<op><=|>=|!=|=|<|>|~)"
)


def _typed(value: str) -> Any:
    text = value.strip()
    if text.lower() == "true":
        return True
    if text.lower() == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_query(text: str) -> SearchQuery:
    """Parse the compact query-string syntax into a :class:`SearchQuery`."""
    matches = list(_CLAUSE_RE.finditer(text))
    if not matches:
        # Bare text is a keyword search.
        if text.strip():
            return SearchQuery(keyword=text.strip())
        raise QueryError("empty query string")
    leading = text[: matches[0].start()].strip()
    keyword_parts = [leading] if leading else []
    kind = None
    sort = SORT_RELEVANCE
    descending = True
    limit: Optional[int] = 20
    offset = 0
    relaxed = False
    bbox = None
    filters: List[PropertyFilter] = []
    for i, match in enumerate(matches):
        prop = match.group("prop").lower()
        op = match.group("op")
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        raw_value = text[match.end() : end].strip()
        if prop in _RESERVED and op != "=":
            raise QueryError(f"reserved field {prop!r} only supports '='")
        if prop == "keyword":
            keyword_parts.append(raw_value)
        elif prop == "kind":
            kind = raw_value.lower()
        elif prop == "sort":
            sort = raw_value.lower()
        elif prop == "order":
            if raw_value.lower() not in ("asc", "desc"):
                raise QueryError(f"order must be 'asc' or 'desc', got {raw_value!r}")
            descending = raw_value.lower() == "desc"
        elif prop == "limit":
            try:
                limit = int(raw_value)
            except ValueError:
                raise QueryError(f"limit must be an integer, got {raw_value!r}") from None
            if limit == 0:
                limit = None  # limit=0 means "no limit"
        elif prop == "offset":
            try:
                offset = int(raw_value)
            except ValueError:
                raise QueryError(f"offset must be an integer, got {raw_value!r}") from None
        elif prop == "relaxed":
            relaxed = raw_value.lower() in ("true", "1", "yes")
        elif prop == "bbox":
            bbox = _parse_bbox(raw_value)
        else:
            filters.append(PropertyFilter(prop, op, _typed(raw_value)))
    return SearchQuery(
        keyword=" ".join(part for part in keyword_parts if part),
        kind=kind,
        filters=tuple(filters),
        sort=sort,
        descending=descending,
        limit=limit,
        offset=offset,
        relaxed=relaxed,
        bbox=bbox,
    )


def _parse_bbox(raw: str) -> BoundingBox:
    parts = raw.split(",")
    if len(parts) != 4:
        raise QueryError(f"bbox needs 'south,west,north,east', got {raw!r}")
    try:
        south, west, north, east = (float(part) for part in parts)
    except ValueError:
        raise QueryError(f"bbox needs four numbers, got {raw!r}") from None
    return BoundingBox(south, west, north, east)
